// Property battery for the transient-VM preemption generator: the contracts
// the planner/estimator stack leans on — byte-identical reproducibility,
// hazard actually increasing in uptime, the hard max-lifetime cutoff never
// leaking an over-age up-spell into a trace, burst revocations correlated
// within (and confined to) their group, and clean round-trips through the
// binary trace format and the incremental estimator.
#include "workload/preemption.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "core/estimator.hpp"
#include "core/incremental_estimator.hpp"
#include "test_support.hpp"
#include "util/time.hpp"

namespace fgcs {
namespace {

std::string serialized(const MachineTrace& trace) {
  std::ostringstream os;
  trace.save(os);
  return os.str();
}

/// Maximal runs of consecutive up ticks across the whole trace (spells span
/// day boundaries). Runs cut short by the end of the trace are censored:
/// reported separately so hazard estimates can exclude them.
struct UpRuns {
  std::vector<std::size_t> completed;  // terminated by a down tick
  std::size_t censored = 0;            // the final still-up run, if any
};

UpRuns up_runs(const MachineTrace& trace) {
  UpRuns runs;
  std::size_t current = 0;
  for (std::int64_t day = 0; day < trace.day_count(); ++day) {
    for (std::size_t i = 0; i < trace.samples_per_day(); ++i) {
      if (trace.at(day, i).up()) {
        ++current;
      } else {
        if (current > 0) runs.completed.push_back(current);
        current = 0;
      }
    }
  }
  runs.censored = current;
  return runs;
}

TEST(PreemptionGeneratorTest, SeedReproducibleByteIdentical) {
  const PreemptionParams params;
  const std::vector<MachineTrace> a =
      generate_preemption_fleet(params, 42, 3, 8);
  const std::vector<MachineTrace> b =
      generate_preemption_fleet(params, 42, 3, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t m = 0; m < a.size(); ++m) {
    EXPECT_EQ(a[m].machine_id(), b[m].machine_id());
    EXPECT_EQ(serialized(a[m]), serialized(b[m])) << a[m].machine_id();
  }
  // A different seed must actually change the bytes.
  const std::vector<MachineTrace> c =
      generate_preemption_fleet(params, 43, 3, 8);
  EXPECT_NE(serialized(a[0]), serialized(c[0]));
}

TEST(PreemptionGeneratorTest, EmpiricalHazardIncreasesWithUptime) {
  // Bursts off and the cutoff pushed past every bin, so the up-spell
  // distribution is the pure truncated Weibull: with shape 2.5 the hazard
  // h(t) ∝ t^1.5 should rise steeply across 2-hour uptime bins.
  PreemptionParams params;
  params.hazard_shape = 2.5;
  params.hazard_scale_hours = 6.0;
  params.max_lifetime_hours = 30.0;
  params.burst_rate_per_day = 0.0;
  params.restart_min_s = 300.0;
  params.restart_max_s = 600.0;

  std::vector<std::size_t> spells;
  const std::vector<MachineTrace> fleet =
      generate_preemption_fleet(params, 7, 3, 45);
  for (const MachineTrace& trace : fleet) {
    const UpRuns runs = up_runs(trace);
    spells.insert(spells.end(), runs.completed.begin(), runs.completed.end());
  }
  ASSERT_GT(spells.size(), 200u);  // enough events for stable bin estimates

  // Empirical hazard per 2 h bin: P(die in bin | survived to bin start).
  const std::size_t bin_ticks = 2 * kSecondsPerHour / 60;
  const std::size_t bins = 4;
  std::vector<double> hazard(bins, 0.0);
  for (std::size_t b = 0; b < bins; ++b) {
    std::size_t at_risk = 0;
    std::size_t died = 0;
    for (const std::size_t len : spells) {
      if (len < b * bin_ticks) continue;
      ++at_risk;
      if (len < (b + 1) * bin_ticks) ++died;
    }
    ASSERT_GT(at_risk, 20u) << "bin " << b;
    hazard[b] = static_cast<double>(died) / static_cast<double>(at_risk);
  }
  for (std::size_t b = 0; b + 1 < bins; ++b)
    EXPECT_LT(hazard[b], hazard[b + 1]) << "bin " << b;
  // And the rise is substantial, not noise-level.
  EXPECT_GT(hazard[bins - 1], 2.0 * hazard[0]);
}

TEST(PreemptionGeneratorTest, NoSpellSurvivesTheMaxLifetimeCutoff) {
  // A long Weibull scale would allow multi-day lifetimes; the hard cutoff
  // must revoke at 6 h regardless.
  PreemptionParams params;
  params.hazard_shape = 1.2;
  params.hazard_scale_hours = 40.0;
  params.max_lifetime_hours = 6.0;
  params.burst_rate_per_day = 0.0;

  const std::size_t cutoff_ticks = 6 * kSecondsPerHour / 60;
  std::size_t revocations = 0;
  for (const MachineTrace& trace :
       generate_preemption_fleet(params, 11, 2, 20)) {
    const UpRuns runs = up_runs(trace);
    for (const std::size_t len : runs.completed) {
      // +1 slack: a spell straddling tick boundaries can touch one extra
      // partially-up tick.
      EXPECT_LE(len, cutoff_ticks + 1);
    }
    EXPECT_LE(runs.censored, cutoff_ticks + 1);
    revocations += runs.completed.size();
  }
  // The cutoff actually fired many times over 20 days.
  EXPECT_GT(revocations, 50u);
}

TEST(PreemptionGeneratorTest, BurstsHitExactlyTheConfiguredGroup) {
  // Hazard effectively disabled (scale and cutoff far beyond the horizon):
  // the ONLY revocations are fleet-wide bursts, so group membership fully
  // determines who goes down, and the whole group shares the burst tick.
  PreemptionParams params;
  params.hazard_shape = 2.0;
  params.hazard_scale_hours = 10000.0;
  params.max_lifetime_hours = 100000.0;
  params.burst_rate_per_day = 0.8;
  params.burst_groups = 3;

  const std::uint64_t seed = 5;
  const int days = 10;
  const int machines = 6;  // groups 0,1,2,0,1,2
  const std::vector<BurstEvent> bursts =
      preemption_burst_schedule(params, seed, days);
  ASSERT_FALSE(bursts.empty());
  const std::vector<MachineTrace> fleet =
      generate_preemption_fleet(params, seed, machines, days);

  const SimTime period = params.sampling_period;
  const auto ticks_per_day = static_cast<std::size_t>(kSecondsPerDay / period);
  auto up_at = [&](const MachineTrace& trace, std::size_t tick) {
    return trace.at(static_cast<std::int64_t>(tick / ticks_per_day),
                    tick % ticks_per_day)
        .up();
  };
  /// Whether `group` has a burst within [t - pad, t + pad] — used to excuse
  /// other groups only when their own schedule overlaps the probed tick.
  auto group_busy_near = [&](int group, double t, double pad) {
    for (const BurstEvent& event : bursts)
      if (event.group == group && event.time_s >= t - pad &&
          event.time_s <= t + pad)
        return true;
    return false;
  };

  int verified_bursts = 0;
  for (const BurstEvent& event : bursts) {
    const auto tick = static_cast<std::size_t>(
        event.time_s / static_cast<double>(period));
    if (tick >= ticks_per_day * static_cast<std::size_t>(days)) continue;
    for (int m = 0; m < machines; ++m) {
      const int group = m % params.burst_groups;
      if (group == event.group) {
        // Correlated: every member is down at the burst instant.
        EXPECT_FALSE(up_at(fleet[static_cast<std::size_t>(m)], tick))
            << "machine " << m << " burst at " << event.time_s;
      } else if (!group_busy_near(group, event.time_s,
                                  params.burst_down_max_s +
                                      static_cast<double>(period))) {
        // Confined: a machine of another group is untouched unless its own
        // group's burst outage overlaps this tick.
        EXPECT_TRUE(up_at(fleet[static_cast<std::size_t>(m)], tick))
            << "machine " << m << " burst at " << event.time_s;
      }
    }
    ++verified_bursts;
  }
  EXPECT_GE(verified_bursts, 3);
}

TEST(PreemptionGeneratorTest, RoundTripsThroughBinarySaveLoad) {
  PreemptionParams params;
  const PreemptionTraceGenerator generator(params, 99);
  const MachineTrace original = generator.generate("vm-rt", 1, 12);

  std::stringstream stream;
  original.save(stream);
  const MachineTrace loaded = MachineTrace::load(stream);

  ASSERT_EQ(loaded.day_count(), original.day_count());
  ASSERT_EQ(loaded.samples_per_day(), original.samples_per_day());
  EXPECT_EQ(loaded.machine_id(), original.machine_id());
  for (std::int64_t day = 0; day < original.day_count(); ++day)
    for (std::size_t i = 0; i < original.samples_per_day(); ++i)
      ASSERT_EQ(loaded.at(day, i), original.at(day, i))
          << "day " << day << " tick " << i;
}

TEST(PreemptionGeneratorTest, IncrementalEstimatorMatchesScratchBitForBit) {
  // The streaming path must learn the new hazard shape exactly like the
  // batch path: feed the trace day by day through IncrementalEstimator and
  // compare every model double against the from-scratch estimate.
  PreemptionParams params;
  const PreemptionTraceGenerator generator(params, 2026);
  const MachineTrace full = generator.generate("vm-inc", 0, 14);

  const EstimatorConfig config;
  TimeWindow window;
  window.start_of_day = 9 * kSecondsPerHour;
  window.length = 3 * kSecondsPerHour;
  const DayType type = full.day_type(full.day_count());

  IncrementalEstimator incremental(config, window, type,
                                   full.sampling_period());
  MachineTrace streamed("vm-inc", Calendar(0), full.sampling_period(),
                        full.total_mem_mb());
  for (std::int64_t day = 0; day < full.day_count(); ++day) {
    std::vector<ResourceSample> samples;
    samples.reserve(full.samples_per_day());
    for (std::size_t i = 0; i < full.samples_per_day(); ++i)
      samples.push_back(full.at(day, i));
    streamed.append_day(std::move(samples));
    incremental.on_day_appended(streamed, 0);
  }

  const SmpEstimator scratch(config);
  std::int64_t target = full.day_count();
  while (full.day_type(target) != type) ++target;
  const std::vector<std::int64_t> days =
      scratch.training_days_for(full, target, window);
  const SmpModel want = scratch.build_model(
      scratch.count_transitions(full, days, window));
  const SmpModel got = incremental.model();

  ASSERT_EQ(got.horizon(), want.horizon());
  for (std::size_t from = 0; from < 2; ++from) {
    double g = got.exit_mass(from);
    double w = want.exit_mass(from);
    EXPECT_EQ(std::memcmp(&g, &w, sizeof(double)), 0) << "exit_mass " << from;
    for (std::size_t to = 0; to < kStateCount; ++to) {
      g = got.q(from, to);
      w = want.q(from, to);
      EXPECT_EQ(std::memcmp(&g, &w, sizeof(double)), 0)
          << "q(" << from << "," << to << ")";
      for (std::size_t hold = 1; hold <= want.horizon(); ++hold) {
        g = got.h(from, to, hold);
        w = want.h(from, to, hold);
        ASSERT_EQ(std::memcmp(&g, &w, sizeof(double)), 0)
            << "h(" << from << "," << to << "," << hold << ")";
      }
    }
  }
  EXPECT_EQ(incremental.majority_initial_state(),
            scratch.majority_initial_state(full, days, window));
}

}  // namespace
}  // namespace fgcs
