#include "workload/characterize.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"
#include "workload/trace_generator.hpp"

namespace fgcs {
namespace {

TEST(PearsonTest, PerfectAndInverseCorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  const std::vector<double> c{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateSeriesGiveZero) {
  const std::vector<double> flat{3.0, 3.0, 3.0};
  const std::vector<double> var{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(flat, var), 0.0);
}

TEST(PearsonTest, ValidatesInput) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW(pearson(a, b), PreconditionError);
  const std::vector<double> single{1.0};
  EXPECT_THROW(pearson(single, single), PreconditionError);
}

TEST(HourlyProfileTest, ConstantTraceHasFlatProfile) {
  const MachineTrace trace = test::constant_trace(3, 30, 60);
  const StateClassifier classifier(test::test_thresholds(), 60);
  const HourlyProfile p = hourly_profile(trace, DayType::kWeekday, classifier);
  EXPECT_EQ(p.days, 3u);
  for (int hour = 0; hour < kHoursPerDay; ++hour) {
    EXPECT_NEAR(p.mean_load[hour], 0.30, 1e-9) << hour;
    EXPECT_DOUBLE_EQ(p.availability[hour], 1.0) << hour;
  }
}

TEST(HourlyProfileTest, DetectsBusyHour) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  auto day = test::constant_day(60, 10);
  for (std::size_t i = 14 * 60; i < 15 * 60; ++i) day[i] = test::sample(90);
  trace.append_day(std::move(day));
  const StateClassifier classifier(test::test_thresholds(), 60);
  const HourlyProfile p = hourly_profile(trace, DayType::kWeekday, classifier);
  EXPECT_NEAR(p.mean_load[14], 0.90, 1e-9);
  EXPECT_NEAR(p.mean_load[13], 0.10, 1e-9);
  EXPECT_DOUBLE_EQ(p.availability[14], 0.0);
  EXPECT_DOUBLE_EQ(p.availability[13], 1.0);
}

TEST(HourlyProfileTest, EmptyTypeGivesEmptyProfile) {
  // 3 days from a Monday epoch: all weekdays, no weekend days.
  const MachineTrace trace = test::constant_trace(3, 30, 60);
  const StateClassifier classifier(test::test_thresholds(), 60);
  const HourlyProfile p = hourly_profile(trace, DayType::kWeekend, classifier);
  EXPECT_EQ(p.days, 0u);
}

TEST(RepeatabilityTest, GeneratedTracesRepeatAcrossDays) {
  WorkloadParams params;
  params.sampling_period = 60;
  TraceGenerator generator(params, 31);
  const MachineTrace trace = generator.generate("m0", 28);
  const PatternRepeatability r =
      measure_repeatability(trace, DayType::kWeekday);
  EXPECT_GT(r.day_pairs, 10u);
  // Diurnal structure + anchored episodes must produce clear positive
  // correlation between same-type days — the paper's premise.
  EXPECT_GT(r.consecutive_day_correlation, 0.3);
  EXPECT_GT(r.week_apart_correlation, 0.2);
}

TEST(RepeatabilityTest, TooFewDaysGivesZero) {
  const MachineTrace trace = test::constant_trace(1, 30, 60);
  const PatternRepeatability r =
      measure_repeatability(trace, DayType::kWeekday);
  EXPECT_EQ(r.day_pairs, 0u);
}

}  // namespace
}  // namespace fgcs
