#include "workload/noise.hpp"

#include <gtest/gtest.h>

#include "core/classifier.hpp"
#include "core/empirical.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

TEST(NoiseTest, ZeroCountIsIdentity) {
  const MachineTrace trace = test::constant_trace(3, 10, 60);
  Rng rng(1);
  const MachineTrace noisy = inject_unavailability(trace, 1, 0, {}, rng);
  for (std::int64_t d = 0; d < 3; ++d)
    for (std::size_t i = 0; i < trace.samples_per_day(); ++i)
      ASSERT_EQ(noisy.at(d, i), trace.at(d, i));
}

TEST(NoiseTest, InjectionLandsNearTheRequestedTime) {
  const MachineTrace trace = test::constant_trace(3, 10, 60);
  Rng rng(2);
  const NoiseParams params;
  const MachineTrace noisy = inject_unavailability(trace, 1, 3, params, rng);
  // All modified samples lie within around ± spread + max_hold.
  const SimTime lo = params.around - params.spread;
  const SimTime hi = params.around + params.spread + params.max_hold;
  for (std::size_t i = 0; i < trace.samples_per_day(); ++i) {
    const SimTime sec = static_cast<SimTime>(i) * 60;
    if (noisy.at(1, i).host_load_pct != trace.at(1, i).host_load_pct) {
      EXPECT_GE(sec + 60, lo);
      EXPECT_LE(sec, hi);
      EXPECT_EQ(noisy.at(1, i).host_load_pct, 100);
    }
  }
}

TEST(NoiseTest, OtherDaysUntouched) {
  const MachineTrace trace = test::constant_trace(3, 10, 60);
  Rng rng(3);
  const MachineTrace noisy = inject_unavailability(trace, 1, 5, {}, rng);
  for (const std::int64_t d : {0, 2})
    for (std::size_t i = 0; i < trace.samples_per_day(); ++i)
      ASSERT_EQ(noisy.at(d, i), trace.at(d, i)) << d << ":" << i;
}

TEST(NoiseTest, CreatesUnavailabilityOccurrences) {
  const MachineTrace trace = test::constant_trace(2, 10, 60);
  Rng rng(4);
  const MachineTrace noisy = inject_unavailability(trace, 0, 4, {}, rng);
  const StateClassifier classifier(test::test_thresholds(), 60);
  const UnavailabilityStats before = count_unavailability(trace, classifier);
  const UnavailabilityStats after = count_unavailability(noisy, classifier);
  EXPECT_EQ(before.total(), 0u);
  EXPECT_GT(after.cpu_contention, 0u);
  EXPECT_LE(after.cpu_contention, 4u);  // overlaps may merge occurrences
}

TEST(NoiseTest, MoreNoiseMeansMoreAffectedTime) {
  const MachineTrace trace = test::constant_trace(2, 10, 60);
  auto affected_ticks = [&](int count) {
    Rng rng(5);
    const MachineTrace noisy = inject_unavailability(trace, 0, count, {}, rng);
    std::size_t ticks = 0;
    for (std::size_t i = 0; i < trace.samples_per_day(); ++i)
      if (noisy.at(0, i).host_load_pct == 100) ++ticks;
    return ticks;
  };
  EXPECT_LT(affected_ticks(1), affected_ticks(10));
}

TEST(NoiseTest, ValidatesArguments) {
  const MachineTrace trace = test::constant_trace(2, 10, 60);
  Rng rng(6);
  EXPECT_THROW(inject_unavailability(trace, 5, 1, {}, rng), PreconditionError);
  EXPECT_THROW(inject_unavailability(trace, -1, 1, {}, rng), PreconditionError);
  EXPECT_THROW(inject_unavailability(trace, 0, -1, {}, rng), PreconditionError);
  NoiseParams bad;
  bad.min_hold = 100;
  bad.max_hold = 50;
  EXPECT_THROW(inject_unavailability(trace, 0, 1, bad, rng), PreconditionError);
}

}  // namespace
}  // namespace fgcs
