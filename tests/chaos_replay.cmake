# Replay determinism gate for the chaos driver with the thread pool active:
# runs `fgcs_chaos --scenario service` twice with FGCS_THREADS=4 (forcing the
# batch fan-out onto four pool workers even on a single-CPU host) and fails
# unless both runs exit 0 with byte-identical output. Guards the tool's
# same-flags → same-bytes contract against thread-order-dependent counters
# leaking into the report.
#
# Invoked as: cmake -DCHAOS_BIN=<path-to-fgcs_chaos> -P chaos_replay.cmake
if(NOT DEFINED CHAOS_BIN)
  message(FATAL_ERROR "chaos_replay.cmake requires -DCHAOS_BIN=<fgcs_chaos>")
endif()

set(ENV{FGCS_THREADS} 4)
foreach(run first second)
  execute_process(
    COMMAND ${CHAOS_BIN} --scenario service --seed 11 --machines 4 --days 9
            --jobs 6
    OUTPUT_VARIABLE ${run}_out
    ERROR_VARIABLE ${run}_err
    RESULT_VARIABLE ${run}_rc)
  if(NOT ${run}_rc EQUAL 0)
    message(FATAL_ERROR
      "fgcs_chaos ${run} run failed (rc=${${run}_rc}):\n${${run}_err}")
  endif()
endforeach()

if(NOT first_out STREQUAL second_out)
  message(FATAL_ERROR
    "fgcs_chaos service scenario is not replay-stable with FGCS_THREADS=4\n"
    "--- first run ---\n${first_out}\n--- second run ---\n${second_out}")
endif()
message(STATUS "chaos service scenario replayed byte-identically (pool x4)")

# Network leg: the net scenario drives real loopback sockets through a
# failpoint storm (frame corruption, short reads, stalled writes, dropped
# accepts). Its report prints only deterministic values — per-accept and
# per-frame injection points plus post-stop() counter snapshots — so the same
# flags must replay to the same bytes even though the transport underneath is
# being actively damaged.
foreach(run net_first net_second)
  execute_process(
    COMMAND ${CHAOS_BIN} --scenario net --seed 11 --machines 3 --days 9
            --jobs 5
    OUTPUT_VARIABLE ${run}_out
    ERROR_VARIABLE ${run}_err
    RESULT_VARIABLE ${run}_rc)
  if(NOT ${run}_rc EQUAL 0)
    message(FATAL_ERROR
      "fgcs_chaos net ${run} run failed (rc=${${run}_rc}):\n${${run}_err}")
  endif()
endforeach()

if(NOT net_first_out STREQUAL net_second_out)
  message(FATAL_ERROR
    "fgcs_chaos net scenario is not replay-stable with FGCS_THREADS=4\n"
    "--- first run ---\n${net_first_out}\n--- second run ---\n${net_second_out}")
endif()
message(STATUS "chaos net scenario replayed byte-identically (loopback storm)")

# Multi-reactor leg: the same storm against a 4-reactor server. Hand-off
# placement is forced (deterministic round-robin), every failpoint is
# evaluated per accept or per frame in a sequential driver's order, and the
# report includes the per-reactor counter split — so even the sharded
# server must replay to the same bytes, seed-pinned.
foreach(run mr_first mr_second)
  execute_process(
    COMMAND ${CHAOS_BIN} --scenario net --seed 11 --machines 3 --days 9
            --jobs 5 --reactors 4
    OUTPUT_VARIABLE ${run}_out
    ERROR_VARIABLE ${run}_err
    RESULT_VARIABLE ${run}_rc)
  if(NOT ${run}_rc EQUAL 0)
    message(FATAL_ERROR
      "fgcs_chaos net --reactors 4 ${run} run failed (rc=${${run}_rc}):\n"
      "${${run}_err}")
  endif()
endforeach()

if(NOT mr_first_out STREQUAL mr_second_out)
  message(FATAL_ERROR
    "fgcs_chaos net scenario is not replay-stable at 4 reactors\n"
    "--- first run ---\n${mr_first_out}\n--- second run ---\n${mr_second_out}")
endif()
if(NOT mr_first_out MATCHES "reactors=4 mode=accept-handoff")
  message(FATAL_ERROR
    "fgcs_chaos --reactors 4 did not report the sharded server:\n"
    "${mr_first_out}")
endif()
message(STATUS "chaos net scenario replayed byte-identically (4 reactors)")

# Observability leg: the same scenario with FGCS_TRACE_FILE set must produce
# the *same* bytes — metrics and tracing are pure observers, never allowed to
# perturb the replayed report.
if(DEFINED TRACE_FILE)
  set(ENV{FGCS_TRACE_FILE} ${TRACE_FILE})
  execute_process(
    COMMAND ${CHAOS_BIN} --scenario service --seed 11 --machines 4 --days 9
            --jobs 6
    OUTPUT_VARIABLE traced_out
    ERROR_VARIABLE traced_err
    RESULT_VARIABLE traced_rc)
  if(NOT traced_rc EQUAL 0)
    message(FATAL_ERROR
      "fgcs_chaos traced run failed (rc=${traced_rc}):\n${traced_err}")
  endif()
  if(NOT traced_out STREQUAL first_out)
    message(FATAL_ERROR
      "fgcs_chaos output changed when FGCS_TRACE_FILE was set\n"
      "--- untraced ---\n${first_out}\n--- traced ---\n${traced_out}")
  endif()
  if(NOT EXISTS ${TRACE_FILE})
    message(FATAL_ERROR "traced run wrote no trace file at ${TRACE_FILE}")
  endif()
  file(SIZE ${TRACE_FILE} trace_size)
  if(trace_size EQUAL 0)
    message(FATAL_ERROR "trace file ${TRACE_FILE} is empty")
  endif()
  message(STATUS
    "chaos replay byte-identical with tracing on (${trace_size} trace bytes)")
endif()

# Planner leg: the availability-target planner rides a replica-churn storm on
# the transient-VM fleet (replicas lost at launch, every-Nth fleet probe
# failing to estimate). The service is pinned to max_threads=1 inside the
# scenario, so even with the pool forced to 4 workers the probe order — and
# with it the every:7 estimate-fault attribution, every plan line, and the
# FailpointStats table — must replay byte-identically.
foreach(run pl_first pl_second)
  execute_process(
    COMMAND ${CHAOS_BIN} --scenario planner --seed 11 --machines 6 --days 10
            --jobs 6
    OUTPUT_VARIABLE ${run}_out
    ERROR_VARIABLE ${run}_err
    RESULT_VARIABLE ${run}_rc)
  if(NOT ${run}_rc EQUAL 0)
    message(FATAL_ERROR
      "fgcs_chaos planner ${run} run failed (rc=${${run}_rc}):\n${${run}_err}")
  endif()
endforeach()

if(NOT pl_first_out STREQUAL pl_second_out)
  message(FATAL_ERROR
    "fgcs_chaos planner scenario is not replay-stable with FGCS_THREADS=4\n"
    "--- first run ---\n${pl_first_out}\n--- second run ---\n${pl_second_out}")
endif()
if(NOT pl_first_out MATCHES "plan ")
  message(FATAL_ERROR
    "fgcs_chaos planner printed no plan lines:\n${pl_first_out}")
endif()
message(STATUS "chaos planner scenario replayed byte-identically (churn storm)")

# Ingest leg: the streaming scenario replays a fleet of monitors through
# append-drop and rollup-failure storms with idempotent retries. Every number
# in its report — ack totals, generation counts, server/client counters, the
# failpoint table — is derived from per-frame/per-close injection points in a
# sequential driver's order, so it must replay byte-identically too.
foreach(run ing_first ing_second)
  execute_process(
    COMMAND ${CHAOS_BIN} --scenario ingest --seed 11 --machines 3 --days 6
            --jobs 5
    OUTPUT_VARIABLE ${run}_out
    ERROR_VARIABLE ${run}_err
    RESULT_VARIABLE ${run}_rc)
  if(NOT ${run}_rc EQUAL 0)
    message(FATAL_ERROR
      "fgcs_chaos ingest ${run} run failed (rc=${${run}_rc}):\n${${run}_err}")
  endif()
endforeach()

if(NOT ing_first_out STREQUAL ing_second_out)
  message(FATAL_ERROR
    "fgcs_chaos ingest scenario is not replay-stable with FGCS_THREADS=4\n"
    "--- first run ---\n${ing_first_out}\n--- second run ---\n${ing_second_out}")
endif()
if(NOT ing_first_out MATCHES "history-identical")
  message(FATAL_ERROR
    "fgcs_chaos ingest did not report converged histories:\n${ing_first_out}")
endif()
message(STATUS "chaos ingest scenario replayed byte-identically (storm stream)")

# Ingest at 4 reactors: appends and predictions sharded over reactor-owned
# connections, counters attributed per reactor, still byte-stable.
foreach(run ing4_first ing4_second)
  execute_process(
    COMMAND ${CHAOS_BIN} --scenario ingest --seed 11 --machines 3 --days 6
            --jobs 5 --reactors 4
    OUTPUT_VARIABLE ${run}_out
    ERROR_VARIABLE ${run}_err
    RESULT_VARIABLE ${run}_rc)
  if(NOT ${run}_rc EQUAL 0)
    message(FATAL_ERROR
      "fgcs_chaos ingest --reactors 4 ${run} run failed (rc=${${run}_rc}):\n"
      "${${run}_err}")
  endif()
endforeach()

if(NOT ing4_first_out STREQUAL ing4_second_out)
  message(FATAL_ERROR
    "fgcs_chaos ingest scenario is not replay-stable at 4 reactors\n"
    "--- first run ---\n${ing4_first_out}\n--- second run ---\n${ing4_second_out}")
endif()
if(NOT ing4_first_out MATCHES "reactors=4 mode=accept-handoff")
  message(FATAL_ERROR
    "fgcs_chaos ingest --reactors 4 did not report the sharded server:\n"
    "${ing4_first_out}")
endif()
message(STATUS "chaos ingest scenario replayed byte-identically (4 reactors)")

# Gossip leg: the decentralized-registry storm — a seed-pinned 3-node
# partition/crash/restart script under gossip.drop / gossip.delay, then the
# converged ring serving jobs across three shards through deliberately staled
# client views. Convergence rounds, membership digests, every TR bit, the
# kWrongShard counters, and the failpoint table must all replay
# byte-identically run to run.
foreach(run go_first go_second)
  execute_process(
    COMMAND ${CHAOS_BIN} --scenario gossip --seed 11 --machines 3 --days 8
            --jobs 5
    OUTPUT_VARIABLE ${run}_out
    ERROR_VARIABLE ${run}_err
    RESULT_VARIABLE ${run}_rc)
  if(NOT ${run}_rc EQUAL 0)
    message(FATAL_ERROR
      "fgcs_chaos gossip ${run} run failed (rc=${${run}_rc}):\n${${run}_err}")
  endif()
endforeach()

if(NOT go_first_out STREQUAL go_second_out)
  message(FATAL_ERROR
    "fgcs_chaos gossip scenario is not replay-stable with FGCS_THREADS=4\n"
    "--- first run ---\n${go_first_out}\n--- second run ---\n${go_second_out}")
endif()
if(NOT go_first_out MATCHES "phase restart +converged")
  message(FATAL_ERROR
    "fgcs_chaos gossip did not report a converged restart phase:\n"
    "${go_first_out}")
endif()
message(STATUS "chaos gossip scenario replayed byte-identically (ring storm)")

# Gossip at 4 reactors: each shard server runs the multi-reactor accept
# hand-off; the sharded serving phase (including the per-shard wrong_shard
# split) must stay byte-stable.
foreach(run go4_first go4_second)
  execute_process(
    COMMAND ${CHAOS_BIN} --scenario gossip --seed 11 --machines 3 --days 8
            --jobs 5 --reactors 4
    OUTPUT_VARIABLE ${run}_out
    ERROR_VARIABLE ${run}_err
    RESULT_VARIABLE ${run}_rc)
  if(NOT ${run}_rc EQUAL 0)
    message(FATAL_ERROR
      "fgcs_chaos gossip --reactors 4 ${run} run failed (rc=${${run}_rc}):\n"
      "${${run}_err}")
  endif()
endforeach()

if(NOT go4_first_out STREQUAL go4_second_out)
  message(FATAL_ERROR
    "fgcs_chaos gossip scenario is not replay-stable at 4 reactors\n"
    "--- first run ---\n${go4_first_out}\n--- second run ---\n${go4_second_out}")
endif()
if(NOT go4_first_out MATCHES "reactors=4 mode=accept-handoff")
  message(FATAL_ERROR
    "fgcs_chaos gossip --reactors 4 did not report the sharded server:\n"
    "${go4_first_out}")
endif()
message(STATUS "chaos gossip scenario replayed byte-identically (4 reactors)")
