#include "timeseries/ma.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fgcs {
namespace {

std::vector<double> simulate_ma(std::span<const double> theta, double mean,
                                double sigma, std::size_t n, Rng& rng) {
  std::vector<double> eps(n + theta.size(), 0.0);
  for (double& e : eps) e = rng.normal(0.0, sigma);
  std::vector<double> x(n, 0.0);
  const std::size_t q = theta.size();
  for (std::size_t t = 0; t < n; ++t) {
    double value = eps[t + q];
    for (std::size_t j = 0; j < q; ++j) value += theta[j] * eps[t + q - 1 - j];
    x[t] = mean + value;
  }
  return x;
}

TEST(MaModelTest, NameIncludesOrder) {
  EXPECT_EQ(MaModel(8).name(), "MA(8)");
}

TEST(InnovationsTest, ExactMa1Autocovariances) {
  // MA(1) with θ = 0.5, σ² = 1: γ(0) = 1.25, γ(1) = 0.5, γ(k≥2) = 0.
  std::vector<double> gamma{1.25, 0.5};
  gamma.resize(24, 0.0);  // extra exact lags let the recursion converge
  const std::vector<double> theta = innovations_ma_coefficients(gamma, 1);
  ASSERT_EQ(theta.size(), 1u);
  EXPECT_NEAR(theta[0], 0.5, 0.02);
}

TEST(InnovationsTest, ZeroVarianceGivesZeros) {
  const std::vector<double> gamma{0.0, 0.0, 0.0};
  const std::vector<double> theta = innovations_ma_coefficients(gamma, 2);
  EXPECT_DOUBLE_EQ(theta[0], 0.0);
  EXPECT_DOUBLE_EQ(theta[1], 0.0);
}

TEST(InnovationsTest, RejectsShortGamma) {
  const std::vector<double> gamma{1.0};
  EXPECT_THROW(innovations_ma_coefficients(gamma, 1), PreconditionError);
}

TEST(MaModelTest, RecoversMa1CoefficientFromData) {
  Rng rng(31);
  const std::vector<double> theta{0.6};
  const std::vector<double> x = simulate_ma(theta, 1.0, 1.0, 60000, rng);
  MaModel model(1);
  model.fit(x);
  EXPECT_NEAR(model.coefficients()[0], 0.6, 0.1);
  EXPECT_NEAR(model.mean(), 1.0, 0.05);
}

TEST(MaModelTest, ForecastCollapsesToMeanBeyondOrder) {
  Rng rng(33);
  const std::vector<double> theta{0.4, 0.3};
  const std::vector<double> x = simulate_ma(theta, 2.5, 1.0, 30000, rng);
  MaModel model(2);
  model.fit(x);
  const std::vector<double> f = model.forecast(10);
  for (std::size_t h = 2; h < f.size(); ++h)
    EXPECT_DOUBLE_EQ(f[h], model.mean()) << "h=" << h;
}

TEST(MaModelTest, OneStepForecastUsesResiduals) {
  Rng rng(35);
  const std::vector<double> theta{0.9};
  const std::vector<double> x = simulate_ma(theta, 0.0, 1.0, 60000, rng);
  MaModel model(1);
  model.fit(x);
  // A θ = 0.9 MA(1) one-step forecast should correlate with θ·ε_t; at minimum
  // it must differ from the mean when the last residual is sizeable.
  const std::vector<double> f = model.forecast(3);
  EXPECT_DOUBLE_EQ(f[1], model.mean());
  EXPECT_DOUBLE_EQ(f[2], model.mean());
  // f[0] uses the last residual; verify it is not identical to the mean.
  EXPECT_NE(f[0], model.mean());
}

TEST(MaModelTest, FitRejectsShortSeries) {
  MaModel model(8);
  const std::vector<double> x(9, 1.0);
  EXPECT_THROW(model.fit(x), PreconditionError);
}

TEST(MaModelTest, ForecastBeforeFitThrows) {
  MaModel model(2);
  EXPECT_THROW(model.forecast(5), PreconditionError);
}

}  // namespace
}  // namespace fgcs
