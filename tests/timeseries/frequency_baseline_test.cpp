#include "timeseries/frequency_baseline.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace fgcs {
namespace {

using test::constant_day;
using test::sample;

TEST(FrequencyBaselineTest, MatchesSurvivalFrequency) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  for (int d = 0; d < 4; ++d) {
    auto day = constant_day(60, 10);
    if (d == 1)  // one of four days fails in the window
      for (std::size_t i = 30; i < 90; ++i) day[i] = sample(95);
    trace.append_day(std::move(day));
  }
  const StateClassifier classifier(test::test_thresholds(), 60);
  const TimeWindow w{.start_of_day = 0, .length = 2 * kSecondsPerHour};
  const std::vector<std::int64_t> days{0, 1, 2, 3};
  const FrequencyBaselineResult r =
      predict_tr_frequency(trace, days, w, classifier);
  ASSERT_TRUE(r.tr.has_value());
  EXPECT_DOUBLE_EQ(*r.tr, 0.75);
  EXPECT_EQ(r.days_used, 4u);
}

TEST(FrequencyBaselineTest, NoDataGivesEmpty) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  auto day = constant_day(60, 10);
  for (auto& s : day) s.set_up(false);
  trace.append_day(std::move(day));
  const StateClassifier classifier(test::test_thresholds(), 60);
  const TimeWindow w{.start_of_day = 0, .length = kSecondsPerHour};
  const std::vector<std::int64_t> days{0};
  EXPECT_FALSE(predict_tr_frequency(trace, days, w, classifier).tr.has_value());
}

}  // namespace
}  // namespace fgcs
