#include "timeseries/model.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace fgcs {
namespace {

TEST(ModelFactoryTest, BuildsAllPaperModels) {
  // The exact set from paper Table 1 / Fig. 7.
  for (const char* spec : {"AR(8)", "BM(8)", "MA(8)", "ARMA(8,8)", "LAST"}) {
    const auto model = make_time_series_model(spec);
    ASSERT_NE(model, nullptr) << spec;
    EXPECT_EQ(model->name(), spec);
  }
}

TEST(ModelFactoryTest, ParsesDifferentOrders) {
  EXPECT_EQ(make_time_series_model("AR(16)")->name(), "AR(16)");
  EXPECT_EQ(make_time_series_model("ARMA(2,3)")->name(), "ARMA(2,3)");
  EXPECT_EQ(make_time_series_model("ARMA(2, 3)")->name(), "ARMA(2,3)");
}

TEST(ModelFactoryTest, RejectsMalformedSpecs) {
  EXPECT_THROW(make_time_series_model("AR"), PreconditionError);
  EXPECT_THROW(make_time_series_model("AR()"), PreconditionError);
  EXPECT_THROW(make_time_series_model("AR(8"), PreconditionError);
  EXPECT_THROW(make_time_series_model("AR(a)"), PreconditionError);
  EXPECT_THROW(make_time_series_model("ARMA(8)"), PreconditionError);
  EXPECT_THROW(make_time_series_model("LAST(1)"), PreconditionError);
  EXPECT_THROW(make_time_series_model("HOLT(1)"), PreconditionError);
  EXPECT_THROW(make_time_series_model(""), PreconditionError);
}

}  // namespace
}  // namespace fgcs
