#include "timeseries/ar.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fgcs {
namespace {

std::vector<double> simulate_ar(std::span<const double> phi, double mean,
                                double sigma, std::size_t n, Rng& rng) {
  std::vector<double> x(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    double value = rng.normal(0.0, sigma);
    for (std::size_t i = 0; i < phi.size() && i < t; ++i)
      value += phi[i] * x[t - 1 - i];
    x[t] = value;
  }
  for (double& v : x) v += mean;
  return x;
}

TEST(ArModelTest, NameIncludesOrder) {
  EXPECT_EQ(ArModel(8).name(), "AR(8)");
}

TEST(ArModelTest, RecoversAr1Coefficient) {
  Rng rng(21);
  const std::vector<double> phi{0.7};
  const std::vector<double> x = simulate_ar(phi, 5.0, 1.0, 50000, rng);
  ArModel model(1);
  model.fit(x);
  ASSERT_EQ(model.coefficients().size(), 1u);
  EXPECT_NEAR(model.coefficients()[0], 0.7, 0.02);
  EXPECT_NEAR(model.mean(), 5.0, 0.15);
}

TEST(ArModelTest, RecoversAr2Coefficients) {
  Rng rng(22);
  const std::vector<double> phi{0.5, -0.3};
  const std::vector<double> x = simulate_ar(phi, 0.0, 1.0, 80000, rng);
  ArModel model(2);
  model.fit(x);
  EXPECT_NEAR(model.coefficients()[0], 0.5, 0.02);
  EXPECT_NEAR(model.coefficients()[1], -0.3, 0.02);
}

TEST(ArModelTest, ForecastConvergesToMean) {
  Rng rng(23);
  const std::vector<double> phi{0.6};
  const std::vector<double> x = simulate_ar(phi, 2.0, 0.5, 20000, rng);
  ArModel model(1);
  model.fit(x);
  const std::vector<double> f = model.forecast(200);
  ASSERT_EQ(f.size(), 200u);
  // One-step forecast ≈ mean + 0.6 (last − mean); long-run forecast → mean.
  const double expected1 = model.mean() + 0.6 * (x.back() - model.mean());
  EXPECT_NEAR(f[0], expected1, 0.1);
  EXPECT_NEAR(f.back(), model.mean(), 0.02);
}

TEST(ArModelTest, ConstantSeriesForecastsConstant) {
  const std::vector<double> x(100, 0.42);
  ArModel model(4);
  model.fit(x);
  for (const double f : model.forecast(10)) EXPECT_DOUBLE_EQ(f, 0.42);
}

TEST(ArModelTest, FitRejectsShortSeries) {
  ArModel model(8);
  const std::vector<double> x(9, 1.0);
  EXPECT_THROW(model.fit(x), PreconditionError);
}

TEST(ArModelTest, ForecastBeforeFitThrows) {
  ArModel model(2);
  EXPECT_THROW(model.forecast(5), PreconditionError);
}

TEST(ArModelTest, OrderZeroRejected) {
  EXPECT_THROW(ArModel(0), PreconditionError);
}

}  // namespace
}  // namespace fgcs
