#include "timeseries/arma.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fgcs {
namespace {

std::vector<double> simulate_arma11(double phi, double theta, double mean,
                                    double sigma, std::size_t n, Rng& rng) {
  std::vector<double> x(n, 0.0);
  double prev_eps = rng.normal(0.0, sigma);
  for (std::size_t t = 0; t < n; ++t) {
    const double eps = rng.normal(0.0, sigma);
    const double prev_x = t > 0 ? x[t - 1] : 0.0;
    x[t] = phi * prev_x + eps + theta * prev_eps;
    prev_eps = eps;
  }
  for (double& v : x) v += mean;
  return x;
}

TEST(ArmaModelTest, NameIncludesOrders) {
  EXPECT_EQ(ArmaModel(8, 8).name(), "ARMA(8,8)");
}

TEST(ArmaModelTest, RecoversArma11Coefficients) {
  Rng rng(41);
  const std::vector<double> x = simulate_arma11(0.6, 0.4, 0.0, 1.0, 80000, rng);
  ArmaModel model(1, 1);
  model.fit(x);
  EXPECT_NEAR(model.ar_coefficients()[0], 0.6, 0.05);
  EXPECT_NEAR(model.ma_coefficients()[0], 0.4, 0.07);
}

TEST(ArmaModelTest, ForecastConvergesToMean) {
  Rng rng(43);
  const std::vector<double> x = simulate_arma11(0.5, 0.3, 4.0, 1.0, 40000, rng);
  ArmaModel model(1, 1);
  model.fit(x);
  const std::vector<double> f = model.forecast(300);
  EXPECT_NEAR(f.back(), model.mean(), 0.05);
}

TEST(ArmaModelTest, ConstantSeriesIsDegenerate) {
  const std::vector<double> x(500, 1.5);
  ArmaModel model(2, 2);
  model.fit(x);
  for (const double f : model.forecast(5)) EXPECT_DOUBLE_EQ(f, 1.5);
}

TEST(ArmaModelTest, FitRejectsShortSeries) {
  ArmaModel model(8, 8);
  const std::vector<double> x(30, 1.0);
  EXPECT_THROW(model.fit(x), PreconditionError);
}

TEST(ArmaModelTest, ForecastBeforeFitThrows) {
  ArmaModel model(1, 1);
  EXPECT_THROW(model.forecast(5), PreconditionError);
}

TEST(ArmaModelTest, RejectsZeroOrders) {
  EXPECT_THROW(ArmaModel(0, 1), PreconditionError);
  EXPECT_THROW(ArmaModel(1, 0), PreconditionError);
}

}  // namespace
}  // namespace fgcs
