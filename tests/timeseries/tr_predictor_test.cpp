#include "timeseries/tr_predictor.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "timeseries/simple.hpp"

namespace fgcs {
namespace {

using test::constant_day;
using test::sample;

TEST(LoadSeriesTest, EncodesFailuresAsFullLoad) {
  const Thresholds t = test::test_thresholds();
  std::vector<ResourceSample> samples;
  samples.push_back(sample(30));             // normal: 0.30
  samples.push_back(sample(30, 50, true));   // low memory → 1.0
  samples.push_back(sample(30, 400, false)); // down → 1.0
  const std::vector<double> series = load_series(samples, t);
  EXPECT_DOUBLE_EQ(series[0], 0.30);
  EXPECT_DOUBLE_EQ(series[1], 1.0);
  EXPECT_DOUBLE_EQ(series[2], 1.0);
}

TEST(PrecedingWindowTest, SameDayWhenRoomBefore) {
  const TimeWindow w{.start_of_day = 8 * kSecondsPerHour,
                     .length = 2 * kSecondsPerHour};
  std::int64_t anchor = -1;
  const TimeWindow prev = preceding_window(w, 5, anchor);
  EXPECT_EQ(anchor, 5);
  EXPECT_EQ(prev.start_of_day, 6 * kSecondsPerHour);
  EXPECT_EQ(prev.length, w.length);
}

TEST(PrecedingWindowTest, CrossesToPreviousDay) {
  const TimeWindow w{.start_of_day = kSecondsPerHour,
                     .length = 3 * kSecondsPerHour};
  std::int64_t anchor = -1;
  const TimeWindow prev = preceding_window(w, 5, anchor);
  EXPECT_EQ(anchor, 4);
  EXPECT_EQ(prev.start_of_day, 22 * kSecondsPerHour);
}

TEST(TsTrPredictorTest, QuietMachinePredictsFullTr) {
  const MachineTrace trace = test::constant_trace(6, 10, 60);
  const StateClassifier classifier(test::test_thresholds(), 60);
  LastModel model;
  const TimeWindow w{.start_of_day = 8 * kSecondsPerHour,
                     .length = 2 * kSecondsPerHour};
  const std::vector<std::int64_t> days{3, 4, 5};
  const TsTrResult r =
      predict_tr_time_series(trace, days, w, model, classifier);
  EXPECT_EQ(r.eligible_days, 3u);
  EXPECT_EQ(r.predicted_surviving, 3u);
  ASSERT_TRUE(r.tr.has_value());
  EXPECT_DOUBLE_EQ(*r.tr, 1.0);
}

TEST(TsTrPredictorTest, LastModelExtrapolatesOverload) {
  // Preceding window ends at 95% load: LAST predicts a failing window.
  MachineTrace trace("m", Calendar(0), 60, 512);
  auto day = constant_day(60, 10);
  // 06:00–08:00 climbs to overload; the 08:00 target window itself is idle.
  for (std::size_t i = 7 * 60; i < 8 * 60; ++i) day[i] = sample(95);
  for (std::size_t i = 8 * 60; i < 10 * 60; ++i) day[i] = sample(5);
  trace.append_day(day);
  trace.append_day(day);

  const StateClassifier classifier(test::test_thresholds(), 60);
  LastModel model;
  const TimeWindow w{.start_of_day = 8 * kSecondsPerHour,
                     .length = 2 * kSecondsPerHour};
  const std::vector<std::int64_t> days{0, 1};
  const TsTrResult r =
      predict_tr_time_series(trace, days, w, model, classifier);
  EXPECT_EQ(r.eligible_days, 2u);
  EXPECT_EQ(r.predicted_surviving, 0u);  // predicted failure on both days
  EXPECT_DOUBLE_EQ(*r.tr, 0.0);
}

TEST(TsTrPredictorTest, DayWithoutPrecedingWindowIsSkipped) {
  const MachineTrace trace = test::constant_trace(3, 10, 60);
  const StateClassifier classifier(test::test_thresholds(), 60);
  LastModel model;
  // Window at 01:00 with 3h length: preceding window starts the previous day;
  // day 0 has no predecessor.
  const TimeWindow w{.start_of_day = kSecondsPerHour,
                     .length = 3 * kSecondsPerHour};
  const std::vector<std::int64_t> days{0, 1, 2};
  const TsTrResult r =
      predict_tr_time_series(trace, days, w, model, classifier);
  EXPECT_EQ(r.eligible_days, 2u);
}

TEST(TsTrPredictorTest, IneligibleFailingDaysAreExcluded) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  trace.append_day(constant_day(60, 10));
  auto down_day = constant_day(60, 10);
  for (std::size_t i = 8 * 60; i < 9 * 60; ++i) down_day[i].set_up(false);
  trace.append_day(std::move(down_day));

  const StateClassifier classifier(test::test_thresholds(), 60);
  LastModel model;
  const TimeWindow w{.start_of_day = 8 * kSecondsPerHour,
                     .length = kSecondsPerHour};
  const std::vector<std::int64_t> days{1};
  const TsTrResult r =
      predict_tr_time_series(trace, days, w, model, classifier);
  // Day 1 starts the window down → ineligible.
  EXPECT_EQ(r.eligible_days, 0u);
  EXPECT_FALSE(r.tr.has_value());
}

}  // namespace
}  // namespace fgcs
