#include "timeseries/simple.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace fgcs {
namespace {

TEST(BmModelTest, ForecastsWindowMean) {
  BmModel model(3);
  const std::vector<double> x{10.0, 1.0, 2.0, 3.0};
  model.fit(x);  // mean of last 3 = 2.0
  const std::vector<double> f = model.forecast(4);
  ASSERT_EQ(f.size(), 4u);
  for (const double v : f) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(BmModelTest, WindowLargerThanSeriesUsesAll) {
  BmModel model(100);
  const std::vector<double> x{1.0, 3.0};
  model.fit(x);
  EXPECT_DOUBLE_EQ(model.forecast(1)[0], 2.0);
}

TEST(BmModelTest, NameAndValidation) {
  EXPECT_EQ(BmModel(8).name(), "BM(8)");
  EXPECT_THROW(BmModel(0), PreconditionError);
  BmModel model(2);
  EXPECT_THROW(model.fit({}), PreconditionError);
  EXPECT_THROW(model.forecast(1), PreconditionError);
}

TEST(LastModelTest, ForecastsLastValue) {
  LastModel model;
  const std::vector<double> x{1.0, 2.0, 7.5};
  model.fit(x);
  const std::vector<double> f = model.forecast(3);
  for (const double v : f) EXPECT_DOUBLE_EQ(v, 7.5);
}

TEST(LastModelTest, NameAndValidation) {
  LastModel model;
  EXPECT_EQ(model.name(), "LAST");
  EXPECT_THROW(model.fit({}), PreconditionError);
  EXPECT_THROW(model.forecast(1), PreconditionError);
}

TEST(SimpleModelsTest, ZeroHorizonForecastIsEmpty) {
  LastModel model;
  const std::vector<double> x{1.0};
  model.fit(x);
  EXPECT_TRUE(model.forecast(0).empty());
}

}  // namespace
}  // namespace fgcs
