#include "ishare/replication.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

using test::constant_day;
using test::sample;

MachineTrace idle_trace(const std::string& id, int days, int load_pct = 5) {
  MachineTrace trace(id, Calendar(0), 60, 512);
  for (int d = 0; d < days; ++d) trace.append_day(constant_day(60, load_pct));
  return trace;
}

TEST(ReplicationTest, SingleReplicaCompletesLikePlainExecution) {
  const MachineTrace trace = idle_trace("only", 6);
  Gateway gateway(trace, test::test_thresholds());
  Registry registry;
  registry.publish(gateway);
  const ReplicatingScheduler scheduler(registry, 1);

  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 1800, .mem_mb = 64};
  const SimTime submit = 5 * kSecondsPerDay + 9 * kSecondsPerHour;
  const ReplicatedOutcome outcome =
      scheduler.run_job(job, submit, submit + kSecondsPerDay);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.replicas_started, 1);
  EXPECT_EQ(outcome.winning_machine, "only");
}

TEST(ReplicationTest, FirstCompletionWins) {
  // A fast (idle) machine and a slow (busy but available) one.
  const MachineTrace fast = idle_trace("fast", 6, 5);
  const MachineTrace slow = idle_trace("slow", 6, 55);  // S2: less idle
  Gateway g_fast(fast, test::test_thresholds());
  Gateway g_slow(slow, test::test_thresholds());
  Registry registry;
  registry.publish(g_fast);
  registry.publish(g_slow);
  const ReplicatingScheduler scheduler(registry, 2);

  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 3600, .mem_mb = 64};
  const SimTime submit = 5 * kSecondsPerDay + 9 * kSecondsPerHour;
  const ReplicatedOutcome outcome =
      scheduler.run_job(job, submit, submit + kSecondsPerDay);
  ASSERT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.winning_machine, "fast");
  EXPECT_EQ(outcome.replicas_started, 2);
  // The redundancy costs extra CPU beyond the job itself.
  EXPECT_GT(outcome.total_cpu_spent, job.cpu_seconds);
}

TEST(ReplicationTest, SurvivesSingleMachineFailure) {
  // One machine dies mid-morning every day; the other is clean.
  MachineTrace flaky("flaky", Calendar(0), 60, 512);
  for (int d = 0; d < 6; ++d) {
    auto day = constant_day(60, 5);
    for (std::size_t i = 10 * 60; i < 12 * 60; ++i) day[i] = sample(95);
    flaky.append_day(std::move(day));
  }
  const MachineTrace clean = idle_trace("clean", 6);
  Gateway g_flaky(flaky, test::test_thresholds());
  Gateway g_clean(clean, test::test_thresholds());
  Registry registry;
  registry.publish(g_flaky);
  registry.publish(g_clean);
  const ReplicatingScheduler scheduler(registry, 2);

  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 4 * 3600, .mem_mb = 64};
  const SimTime submit = 5 * kSecondsPerDay + 9 * kSecondsPerHour;
  const ReplicatedOutcome outcome =
      scheduler.run_job(job, submit, submit + kSecondsPerDay);
  ASSERT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.winning_machine, "clean");
  EXPECT_EQ(outcome.replicas_failed, 1);  // the flaky one was lost
}

TEST(ReplicationTest, MoreReplicasThanMachinesIsClamped) {
  const MachineTrace trace = idle_trace("m", 4);
  Gateway gateway(trace, test::test_thresholds());
  Registry registry;
  registry.publish(gateway);
  const ReplicatingScheduler scheduler(registry, 5);
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 600, .mem_mb = 64};
  const SimTime submit = 3 * kSecondsPerDay;
  const ReplicatedOutcome outcome =
      scheduler.run_job(job, submit, submit + kSecondsPerDay);
  EXPECT_EQ(outcome.replicas_started, 1);
}

TEST(ReplicationTest, ValidatesArguments) {
  Registry registry;
  EXPECT_THROW(ReplicatingScheduler(registry, 0), PreconditionError);
  const ReplicatingScheduler scheduler(registry, 1);
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 600, .mem_mb = 64};
  EXPECT_THROW(scheduler.run_job(job, 100, 100), PreconditionError);
  // Empty registry: no replicas, not completed.
  const ReplicatedOutcome outcome = scheduler.run_job(job, 0, 1000);
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.replicas_started, 0);
}

}  // namespace
}  // namespace fgcs
