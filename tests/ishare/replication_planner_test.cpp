// Brute-force differential for the availability-target planner: on fleets
// small enough to enumerate (n <= 12, 4096 subsets), plan_replicas must
// match an independent exhaustive search over ALL subsets — same
// feasibility verdict, bit-identical cost and achieved availability, and
// (the tie-break being total) the exact same machine set — across 500+
// seeded random cases plus the degenerate corners.
//
// Both sides accumulate cost and joint availability over the id-sorted set
// (the planner's documented canonical order), so double equality here is
// exact, not tolerance-based. Test costs are multiples of 0.25, whose sums
// are exact in binary floating point — a cost tie in the generator is a
// real tie, forcing the deeper tie-break rungs to be exercised.
#include "ishare/replication_planner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fgcs {
namespace {

struct BruteResult {
  bool feasible = false;
  double cost = 0.0;
  double availability = 0.0;
  std::vector<std::string> ids;
};

/// All 2^n - 1 nonempty subsets of size <= max_replicas, best under
/// (cost ASC, availability DESC, size ASC, id-list lex ASC) among those
/// meeting the target. Metrics accumulate in id order.
BruteResult brute_force(std::vector<ReplicaCandidate> fleet,
                        const PlannerConfig& config) {
  std::sort(fleet.begin(), fleet.end(),
            [](const ReplicaCandidate& a, const ReplicaCandidate& b) {
              return a.machine_id < b.machine_id;
            });
  const std::size_t n = fleet.size();
  BruteResult best;
  std::vector<std::string> best_ids;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    const int bits = __builtin_popcount(mask);
    if (bits > config.max_replicas) continue;
    double cost = 0.0;
    double miss = 1.0;
    std::vector<std::string> ids;
    for (std::size_t i = 0; i < n; ++i) {
      if (!(mask & (1u << i))) continue;
      cost += fleet[i].cost;
      miss *= 1.0 - fleet[i].tr;
      ids.push_back(fleet[i].machine_id);
    }
    const double availability = 1.0 - miss;
    if (availability < config.target_availability) continue;
    bool better = false;
    if (!best.feasible) {
      better = true;
    } else if (cost != best.cost) {
      better = cost < best.cost;
    } else if (availability != best.availability) {
      better = availability > best.availability;
    } else if (ids.size() != best.ids.size()) {
      better = ids.size() < best.ids.size();
    } else {
      better = std::lexicographical_compare(ids.begin(), ids.end(),
                                            best.ids.begin(), best.ids.end());
    }
    if (better) {
      best.feasible = true;
      best.cost = cost;
      best.availability = availability;
      best.ids = std::move(ids);
    }
  }
  return best;
}

std::vector<std::string> plan_ids(const ReplicationPlan& plan) {
  std::vector<std::string> ids;
  ids.reserve(plan.replicas.size());
  for (const ReplicaCandidate& replica : plan.replicas)
    ids.push_back(replica.machine_id);
  return ids;
}

TEST(ReplicationPlannerDifferential, MatchesBruteForceOn520SeededFleets) {
  int cases = 0;
  int feasible_cases = 0;
  int fallback_cases = 0;
  for (std::uint64_t seed = 0; seed < 520; ++seed) {
    Rng rng(0x9a11'0000u + seed);
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 12));
    std::vector<ReplicaCandidate> fleet;
    for (std::size_t i = 0; i < n; ++i) {
      ReplicaCandidate candidate;
      candidate.machine_id = (i < 10 ? "m0" : "m") + std::to_string(i);
      const std::int64_t kind = rng.uniform_int(0, 9);
      candidate.tr = kind == 0 ? 0.0 : kind == 1 ? 1.0 : rng.uniform();
      candidate.cost = 0.25 * static_cast<double>(rng.uniform_int(1, 16));
      fleet.push_back(candidate);
    }
    // Feed the planner a shuffled order: input order must not matter.
    for (std::size_t i = n; i > 1; --i)
      std::swap(fleet[i - 1], fleet[static_cast<std::size_t>(
                                  rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);

    PlannerConfig config;
    const std::int64_t target_kind = rng.uniform_int(0, 9);
    config.target_availability = target_kind <= 1   ? 0.0
                                 : target_kind == 2 ? 1.0
                                                    : rng.uniform(0.5, 0.9999);
    config.max_replicas = static_cast<int>(
        rng.uniform_int(1, static_cast<std::int64_t>(n) + 2));
    config.fallback_replicas = static_cast<int>(rng.uniform_int(1, 3));
    config.exhaustive_pool = 16;  // >= n: refinement covers the whole fleet

    const BruteResult want = brute_force(fleet, config);
    const ReplicationPlan plan = plan_replicas(fleet, config);
    ++cases;

    ASSERT_EQ(plan.feasible, want.feasible)
        << "seed " << seed << " target " << config.target_availability;
    if (want.feasible) {
      ++feasible_cases;
      EXPECT_FALSE(plan.fallback);
      EXPECT_EQ(plan.total_cost, want.cost) << "seed " << seed;
      EXPECT_EQ(plan.achieved_availability, want.availability)
          << "seed " << seed;
      EXPECT_EQ(plan_ids(plan), want.ids) << "seed " << seed;
      EXPECT_GE(plan.achieved_availability, config.target_availability);
    } else {
      ++fallback_cases;
      EXPECT_TRUE(plan.fallback);
      // (No bound on achieved here: when fallback_replicas > max_replicas
      // the wider fallback set may legitimately exceed the target that was
      // infeasible within the cap.)
      // The fallback is the fixed-degree set: top fallback_replicas by
      // (TR desc, id asc), reported id-sorted.
      std::vector<ReplicaCandidate> ranked = fleet;
      std::sort(ranked.begin(), ranked.end(),
                [](const ReplicaCandidate& a, const ReplicaCandidate& b) {
                  if (a.tr != b.tr) return a.tr > b.tr;
                  return a.machine_id < b.machine_id;
                });
      ranked.resize(std::min<std::size_t>(
          static_cast<std::size_t>(config.fallback_replicas), n));
      std::vector<std::string> want_fallback;
      for (const ReplicaCandidate& replica : ranked)
        want_fallback.push_back(replica.machine_id);
      std::sort(want_fallback.begin(), want_fallback.end());
      EXPECT_EQ(plan_ids(plan), want_fallback) << "seed " << seed;
    }
  }
  EXPECT_GE(cases, 500);
  // The mix must actually exercise both verdicts.
  EXPECT_GT(feasible_cases, 100);
  EXPECT_GT(fallback_cases, 20);
}

TEST(ReplicationPlannerTest, InfeasibleTargetFallsBackAndReports) {
  const std::vector<ReplicaCandidate> fleet = {
      {"a", 0.6, 1.0}, {"b", 0.5, 1.0}, {"c", 0.4, 1.0}};
  PlannerConfig config;
  config.target_availability = 0.999;
  config.max_replicas = 2;
  config.fallback_replicas = 2;
  const ReplicationPlan plan = plan_replicas(fleet, config);
  EXPECT_FALSE(plan.feasible);
  EXPECT_TRUE(plan.fallback);
  ASSERT_EQ(plan.replicas.size(), 2u);  // the two highest-TR machines
  EXPECT_EQ(plan.replicas[0].machine_id, "a");
  EXPECT_EQ(plan.replicas[1].machine_id, "b");
  // Reported, not silent: the shortfall is visible.
  EXPECT_LT(plan.achieved_availability, config.target_availability);
  EXPECT_EQ(plan.achieved_availability, 1.0 - 0.4 * 0.5);
}

TEST(ReplicationPlannerTest, TargetZeroPicksCheapestSingleReplica) {
  const std::vector<ReplicaCandidate> fleet = {
      {"pricey", 0.99, 4.0}, {"cheap", 0.2, 0.5}, {"mid", 0.7, 1.0}};
  PlannerConfig config;
  config.target_availability = 0.0;
  const ReplicationPlan plan = plan_replicas(fleet, config);
  EXPECT_TRUE(plan.feasible);
  ASSERT_EQ(plan.replicas.size(), 1u);
  EXPECT_EQ(plan.replicas[0].machine_id, "cheap");
  EXPECT_EQ(plan.total_cost, 0.5);
}

TEST(ReplicationPlannerTest, SingleMachineFleetFeasibleIffTrMeetsTarget) {
  PlannerConfig config;
  config.target_availability = 0.9;
  config.fallback_replicas = 3;

  const ReplicationPlan good =
      plan_replicas({{"solo", 0.95, 1.0}}, config);
  EXPECT_TRUE(good.feasible);
  ASSERT_EQ(good.replicas.size(), 1u);
  EXPECT_EQ(good.replicas[0].machine_id, "solo");

  const ReplicationPlan bad = plan_replicas({{"solo", 0.5, 1.0}}, config);
  EXPECT_FALSE(bad.feasible);
  EXPECT_TRUE(bad.fallback);
  ASSERT_EQ(bad.replicas.size(), 1u);  // fallback capped at the fleet size
  EXPECT_EQ(bad.achieved_availability, 0.5);
}

TEST(ReplicationPlannerTest, TrZeroMachineIsNeverWorthIncluding) {
  // The dead machine is free, but adds nothing: availability ties, so the
  // size tie-break must exclude it.
  const std::vector<ReplicaCandidate> fleet = {{"live", 0.9, 1.0},
                                               {"dead", 0.0, 0.0}};
  PlannerConfig config;
  config.target_availability = 0.5;
  const ReplicationPlan plan = plan_replicas(fleet, config);
  EXPECT_TRUE(plan.feasible);
  ASSERT_EQ(plan.replicas.size(), 1u);
  EXPECT_EQ(plan.replicas[0].machine_id, "live");
}

TEST(ReplicationPlannerTest, TargetOneRequiresAPerfectMachine) {
  PlannerConfig config;
  config.target_availability = 1.0;

  // No TR=1 machine: infeasible no matter how many replicas. (TRs are kept
  // moderate so the joint miss probability stays representable — at
  // TR ≈ 1−1e−6 the double product would round to exactly 1.0, which is
  // feasible by the arithmetic both planner and brute force share.)
  const ReplicationPlan miss = plan_replicas(
      {{"a", 0.9, 1.0}, {"b", 0.9, 1.0}, {"c", 0.9, 1.0}}, config);
  EXPECT_FALSE(miss.feasible);

  // A TR=1 machine satisfies it alone — and the cheapest such one wins.
  const ReplicationPlan hit = plan_replicas(
      {{"gold", 1.0, 3.0}, {"iron", 1.0, 1.0}, {"flaky", 0.4, 0.25}}, config);
  EXPECT_TRUE(hit.feasible);
  ASSERT_EQ(hit.replicas.size(), 1u);
  EXPECT_EQ(hit.replicas[0].machine_id, "iron");
  EXPECT_EQ(hit.achieved_availability, 1.0);
}

TEST(ReplicationPlannerTest, EmptyFleetYieldsEmptyInfeasiblePlan) {
  const ReplicationPlan plan = plan_replicas({}, PlannerConfig{});
  EXPECT_FALSE(plan.feasible);
  EXPECT_TRUE(plan.fallback);
  EXPECT_TRUE(plan.replicas.empty());
  EXPECT_EQ(plan.total_cost, 0.0);
}

TEST(ReplicationPlannerTest, FeasibilityDecidedBeyondTheExhaustivePool) {
  // 18 identical-but-weak machines, pool of 4: no subset of 4 meets the
  // target, but the greedy certificate must still find the size-6 prefix
  // that does — feasibility never silently degrades to the pool.
  std::vector<ReplicaCandidate> fleet;
  for (int i = 0; i < 18; ++i)
    fleet.push_back({(i < 10 ? "h0" : "h") + std::to_string(i), 0.5, 1.0});
  PlannerConfig config;
  config.target_availability = 0.98;  // needs 6 machines at TR 0.5
  config.max_replicas = 8;
  config.exhaustive_pool = 4;
  const ReplicationPlan plan = plan_replicas(fleet, config);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.replicas.size(), 6u);
  EXPECT_EQ(plan.pool_size, 4u);
  EXPECT_GE(plan.achieved_availability, config.target_availability);
}

TEST(ReplicationPlannerTest, ValidatesInput) {
  EXPECT_THROW(plan_replicas({{"x", -0.1, 1.0}}, PlannerConfig{}),
               PreconditionError);
  EXPECT_THROW(plan_replicas({{"x", 1.1, 1.0}}, PlannerConfig{}),
               PreconditionError);
  EXPECT_THROW(plan_replicas({{"x", 0.5, -1.0}}, PlannerConfig{}),
               PreconditionError);
  PlannerConfig bad_target;
  bad_target.target_availability = 1.5;
  EXPECT_THROW(plan_replicas({{"x", 0.5, 1.0}}, bad_target),
               PreconditionError);
  PlannerConfig bad_max;
  bad_max.max_replicas = 0;
  EXPECT_THROW(plan_replicas({{"x", 0.5, 1.0}}, bad_max), PreconditionError);
  PlannerConfig bad_pool;
  bad_pool.exhaustive_pool = 21;
  EXPECT_THROW(plan_replicas({{"x", 0.5, 1.0}}, bad_pool), PreconditionError);
}

}  // namespace
}  // namespace fgcs
