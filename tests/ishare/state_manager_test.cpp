#include "ishare/state_manager.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace fgcs {
namespace {

using test::constant_day;
using test::sample;

TEST(StateManagerTest, PredictsFromHistory) {
  const MachineTrace trace = test::constant_trace(8, 10, 60);
  const StateManager manager(trace);
  const Prediction p = manager.predict(
      7, TimeWindow{.start_of_day = 9 * kSecondsPerHour,
                    .length = 2 * kSecondsPerHour});
  EXPECT_DOUBLE_EQ(p.temporal_reliability, 1.0);
}

TEST(StateManagerTest, PredictForJobRoundsToTicks) {
  const MachineTrace trace = test::constant_trace(8, 10, 60);
  const StateManager manager(trace);
  // Submit at day 7, 09:00:30, duration 3599 s: window rounds to tick grid.
  const SimTime now = 7 * kSecondsPerDay + 9 * kSecondsPerHour + 30;
  const Prediction p = manager.predict_for_job(now, 3599);
  EXPECT_EQ(p.steps, 60u);  // 3600 s at 60 s ticks
  EXPECT_DOUBLE_EQ(p.temporal_reliability, 1.0);
}

TEST(StateManagerTest, PredictForJobClampsToOneDay) {
  const MachineTrace trace = test::constant_trace(8, 10, 60);
  const StateManager manager(trace);
  const SimTime now = 7 * kSecondsPerDay;
  const Prediction p = manager.predict_for_job(now, 3 * kSecondsPerDay);
  EXPECT_EQ(p.steps, static_cast<std::size_t>(kSecondsPerDay / 60));
}

TEST(StateManagerTest, ReliabilityReflectsHistoricalFailures) {
  // Half the weekday mornings carry a steady overload at 09:00.
  MachineTrace trace("m", Calendar(0), 60, 512);
  for (int d = 0; d < 10; ++d) {
    auto day = constant_day(60, 10);
    if (d % 2 == 0)
      for (std::size_t i = 9 * 60; i < 10 * 60; ++i) day[i] = sample(95);
    trace.append_day(std::move(day));
  }
  const StateManager manager(trace);
  const TimeWindow morning{.start_of_day = 8 * kSecondsPerHour,
                           .length = 3 * kSecondsPerHour};
  const TimeWindow evening{.start_of_day = 18 * kSecondsPerHour,
                           .length = 3 * kSecondsPerHour};
  const double tr_morning = manager.predict(9, morning).temporal_reliability;
  const double tr_evening = manager.predict(9, evening).temporal_reliability;
  EXPECT_LT(tr_morning, 0.8);
  EXPECT_DOUBLE_EQ(tr_evening, 1.0);
}

}  // namespace
}  // namespace fgcs
