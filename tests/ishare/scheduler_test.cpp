#include "ishare/scheduler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

using test::constant_day;
using test::sample;

/// Machine whose weekday mornings always overload 10:00–12:00.
MachineTrace unreliable_trace(const std::string& id, int days) {
  MachineTrace trace(id, Calendar(0), 60, 512);
  for (int d = 0; d < days; ++d) {
    auto day = constant_day(60, 10);
    for (std::size_t i = 10 * 60; i < 12 * 60; ++i) day[i] = sample(95);
    trace.append_day(std::move(day));
  }
  return trace;
}

MachineTrace reliable_trace(const std::string& id, int days) {
  MachineTrace trace(id, Calendar(0), 60, 512);
  for (int d = 0; d < days; ++d) trace.append_day(constant_day(60, 10));
  return trace;
}

TEST(JobSchedulerTest, SelectsTheMoreReliableMachine) {
  const MachineTrace good = reliable_trace("good", 8);
  const MachineTrace bad = unreliable_trace("bad", 8);
  Gateway g_good(good, test::test_thresholds());
  Gateway g_bad(bad, test::test_thresholds());
  Registry registry;
  registry.publish(g_bad);
  registry.publish(g_good);

  const JobScheduler scheduler(registry);
  const SimTime now = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  Gateway* choice = scheduler.select_machine(now, 4 * kSecondsPerHour);
  ASSERT_NE(choice, nullptr);
  EXPECT_EQ(choice->machine_id(), "good");
}

TEST(JobSchedulerTest, BatchedSelectionMatchesSerial) {
  const MachineTrace good = reliable_trace("good", 8);
  const MachineTrace bad = unreliable_trace("bad", 8);
  Gateway g_good(good, test::test_thresholds());
  Gateway g_bad(bad, test::test_thresholds());
  Registry registry;
  registry.publish(g_bad);
  registry.publish(g_good);

  const JobScheduler serial(registry);
  const auto service = std::make_shared<PredictionService>();
  const JobScheduler batched(registry, SchedulerConfig{}, service);

  for (const SimTime hour : {8, 9, 11, 15}) {
    const SimTime now = 7 * kSecondsPerDay + hour * kSecondsPerHour;
    for (const SimTime duration : {kSecondsPerHour, 4 * kSecondsPerHour}) {
      Gateway* expected = serial.select_machine(now, duration);
      // Probe twice: the repeat is answered entirely from the cache.
      Gateway* actual = batched.select_machine(now, duration);
      ASSERT_NE(actual, nullptr);
      EXPECT_EQ(actual, expected);
      EXPECT_EQ(batched.select_machine(now, duration), expected);
    }
  }
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.hits, stats.misses);  // every probe re-issued once, warm
  EXPECT_GT(stats.hits, 0u);
}

TEST(JobSchedulerTest, EmptyRegistryGivesNoMachine) {
  Registry registry;
  const JobScheduler scheduler(registry);
  EXPECT_EQ(scheduler.select_machine(0, 3600), nullptr);
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 100, .mem_mb = 50};
  const JobOutcome outcome = scheduler.run_job(job, 60, 86400);
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.attempts, 0);
}

TEST(JobSchedulerTest, CompletesJobOnReliableMachine) {
  const MachineTrace good = reliable_trace("good", 8);
  Gateway gateway(good, test::test_thresholds());
  Registry registry;
  registry.publish(gateway);
  const JobScheduler scheduler(registry);

  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 3600, .mem_mb = 100};
  const SimTime submit = 6 * kSecondsPerDay + 9 * kSecondsPerHour;
  const JobOutcome outcome =
      scheduler.run_job(job, submit, submit + kSecondsPerDay);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(outcome.failures, 0);
  EXPECT_EQ(outcome.machines_used, std::vector<std::string>{"good"});
  EXPECT_GT(outcome.response_time(), 3600);
  EXPECT_LT(outcome.response_time(), 2 * 3600);
}

TEST(JobSchedulerTest, RestartsAfterFailureAndEventuallyCompletes) {
  // Only an unreliable machine is available: a 3-CPU-hour job submitted at
  // 9:00 dies at 10:01 and must be restarted (from scratch) after the
  // overload clears; it completes in the afternoon.
  const MachineTrace bad = unreliable_trace("bad", 8);
  Gateway gateway(bad, test::test_thresholds());
  Registry registry;
  registry.publish(gateway);
  SchedulerConfig config;
  config.retry_delay = 600;
  const JobScheduler scheduler(registry, config);

  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 3 * 3600, .mem_mb = 100};
  const SimTime submit = 7 * kSecondsPerDay + 9 * kSecondsPerHour;
  const JobOutcome outcome =
      scheduler.run_job(job, submit, submit + kSecondsPerDay);
  EXPECT_TRUE(outcome.completed);
  EXPECT_GT(outcome.failures, 0);
  EXPECT_GT(outcome.attempts, 1);
}

TEST(JobSchedulerTest, CheckpointingReducesResponseTimeOnFlakyMachine) {
  const MachineTrace bad = unreliable_trace("bad", 8);
  Gateway gateway(bad, test::test_thresholds());
  Registry registry;
  registry.publish(gateway);
  SchedulerConfig config;
  config.retry_delay = 300;  // keep the retry count well under max_attempts
  const JobScheduler scheduler(registry, config);

  // 6-CPU-hour job straddling the daily overload.
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 6 * 3600, .mem_mb = 100};
  const SimTime submit = 7 * kSecondsPerDay + 6 * kSecondsPerHour;
  CheckpointConfig checkpoint;
  checkpoint.fixed_interval = 1800;
  checkpoint.cost_seconds = 30;

  const JobOutcome without = scheduler.run_job(
      job, submit, submit + kSecondsPerDay, CheckpointMode::kNone);
  const JobOutcome with = scheduler.run_job(
      job, submit, submit + kSecondsPerDay, CheckpointMode::kFixed, checkpoint);

  ASSERT_TRUE(without.completed);
  ASSERT_TRUE(with.completed);
  EXPECT_GT(with.checkpoints_taken, 0);
  EXPECT_LT(with.response_time(), without.response_time());
}

TEST(JobSchedulerTest, ValidatesConfigAndArguments) {
  Registry registry;
  EXPECT_THROW(JobScheduler(registry, SchedulerConfig{.max_attempts = 0}),
               PreconditionError);
  EXPECT_THROW(JobScheduler(registry, SchedulerConfig{.backoff_factor = 0.5}),
               PreconditionError);
  EXPECT_THROW(JobScheduler(registry, SchedulerConfig{.backoff_jitter = 1.0}),
               PreconditionError);
  const JobScheduler scheduler(registry);
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 10, .mem_mb = 10};
  EXPECT_THROW(scheduler.run_job(job, 100, 100), PreconditionError);
}

TEST(RetryBackoffTest, FactorOneReproducesLegacyFixedDelay) {
  SchedulerConfig config;
  config.retry_delay = 60;
  Rng rng(1);
  const Rng untouched(1);
  for (int retry = 0; retry < 20; ++retry)
    EXPECT_EQ(retry_backoff_delay(config, retry, rng), 60);
  // Legacy mode must never consume randomness: the stream is untouched.
  Rng probe = rng;
  Rng reference = untouched;
  EXPECT_EQ(probe.uniform(0.0, 1.0), reference.uniform(0.0, 1.0));
}

TEST(RetryBackoffTest, GrowsExponentiallyWithoutJitter) {
  SchedulerConfig config;
  config.retry_delay = 60;
  config.backoff_factor = 2.0;
  config.backoff_jitter = 0.0;
  config.max_retry_delay = 100000;
  Rng rng(1);
  EXPECT_EQ(retry_backoff_delay(config, 0, rng), 60);
  EXPECT_EQ(retry_backoff_delay(config, 1, rng), 120);
  EXPECT_EQ(retry_backoff_delay(config, 2, rng), 240);
  EXPECT_EQ(retry_backoff_delay(config, 3, rng), 480);
}

TEST(RetryBackoffTest, CapsAtMaxRetryDelay) {
  SchedulerConfig config;
  config.retry_delay = 60;
  config.backoff_factor = 2.0;
  config.backoff_jitter = 0.0;
  config.max_retry_delay = 300;
  Rng rng(1);
  EXPECT_EQ(retry_backoff_delay(config, 2, rng), 240);
  EXPECT_EQ(retry_backoff_delay(config, 3, rng), 300);
  EXPECT_EQ(retry_backoff_delay(config, 30, rng), 300);
}

TEST(RetryBackoffTest, JitterNeverExceedsMaxRetryDelay) {
  // The cap is a hard bound, jitter included: once the exponential curve
  // saturates, an upward jitter draw must not push the pause past it.
  SchedulerConfig config;
  config.retry_delay = 100;
  config.backoff_factor = 2.0;
  config.backoff_jitter = 0.5;
  config.max_retry_delay = 300;
  Rng rng(2026);
  bool saw_upward_draw = false;
  for (int retry = 0; retry < 40; ++retry) {
    const SimTime delay = retry_backoff_delay(config, retry, rng);
    EXPECT_LE(delay, config.max_retry_delay) << "retry " << retry;
    if (retry >= 2 && delay == config.max_retry_delay) saw_upward_draw = true;
  }
  // With jitter 0.5 over 40 saturated retries, some draw lands at or above
  // the cap — otherwise this test never exercised the clamp.
  EXPECT_TRUE(saw_upward_draw);
}

TEST(RetryBackoffTest, JitterIsBoundedAndSeedDeterministic) {
  SchedulerConfig config;
  config.retry_delay = 1000;
  config.backoff_factor = 2.0;
  config.backoff_jitter = 0.2;
  config.max_retry_delay = 1000000;
  Rng first(42);
  Rng second(42);
  for (int retry = 0; retry < 10; ++retry) {
    const double nominal = 1000.0 * std::pow(2.0, retry);
    const SimTime a = retry_backoff_delay(config, retry, first);
    const SimTime b = retry_backoff_delay(config, retry, second);
    EXPECT_EQ(a, b);  // same seed, same stream position → same delay
    EXPECT_GE(static_cast<double>(a), nominal * 0.8 - 1.0);
    EXPECT_LE(static_cast<double>(a), nominal * 1.2 + 1.0);
  }
  // Different seed → (almost surely) a different jittered sequence.
  Rng other(43);
  bool any_difference = false;
  for (int retry = 0; retry < 10; ++retry) {
    Rng replay(42);
    for (int skip = 0; skip < retry; ++skip)
      retry_backoff_delay(config, skip, replay);
    if (retry_backoff_delay(config, retry, other) !=
        retry_backoff_delay(config, retry, replay))
      any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace fgcs
