#include "ishare/resource_monitor.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"
#include "workload/replay.hpp"

namespace fgcs {
namespace {

MachineTrace trace_with_outage(int down_from, int down_to) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  auto day = test::constant_day(60, 25);
  for (int i = down_from; i < down_to; ++i)
    day[static_cast<std::size_t>(i)].set_up(false);
  trace.append_day(std::move(day));
  return trace;
}

TEST(ResourceMonitorTest, LogsEverySampleWhenUp) {
  const MachineTrace source = test::constant_trace(1, 25, 60);
  auto machine = make_replay_machine(source, test::test_thresholds());
  ResourceMonitor monitor(*machine);
  for (SimTime t = 60; t <= kSecondsPerDay; t += 60) monitor.on_tick(t);
  EXPECT_EQ(monitor.log().size(), 1440u);
  EXPECT_EQ(monitor.samples_taken(), 1440u);
  for (const ResourceSample& s : monitor.log()) {
    EXPECT_EQ(s.host_load_pct, 25);
    EXPECT_TRUE(s.up());
  }
}

TEST(ResourceMonitorTest, HeartbeatGapBackfillsOutage) {
  // Machine down for samples 100..119 (ticks 101*60 .. 120*60).
  const MachineTrace source = trace_with_outage(100, 120);
  auto machine = make_replay_machine(source, test::test_thresholds());
  ResourceMonitor monitor(*machine);
  for (SimTime t = 60; t <= kSecondsPerDay; t += 60) monitor.on_tick(t);
  const auto& log = monitor.log();
  ASSERT_EQ(log.size(), 1440u);
  // Samples covering the outage were reconstructed as down.
  std::size_t down_count = 0;
  for (const ResourceSample& s : log)
    if (!s.up()) ++down_count;
  EXPECT_EQ(down_count, 20u);
  EXPECT_FALSE(log[105].up());
  EXPECT_TRUE(log[125].up());
  // Fewer actual measurements than log entries: the gap was never sampled.
  EXPECT_EQ(monitor.samples_taken(), 1440u - 20u);
}

TEST(ResourceMonitorTest, LeadingOutageBackfilledOnFirstContact) {
  const MachineTrace source = trace_with_outage(0, 10);
  auto machine = make_replay_machine(source, test::test_thresholds());
  ResourceMonitor monitor(*machine);
  for (SimTime t = 60; t <= 60 * 20; t += 60) monitor.on_tick(t);
  const auto& log = monitor.log();
  ASSERT_EQ(log.size(), 20u);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(log[i].up()) << i;
  for (int i = 10; i < 20; ++i) EXPECT_TRUE(log[i].up()) << i;
}

TEST(ResourceMonitorTest, ToTraceKeepsOnlyCompleteDays) {
  const MachineTrace source = test::constant_trace(2, 30, 60);
  auto machine = make_replay_machine(source, test::test_thresholds());
  ResourceMonitor monitor(*machine);
  // 1.5 days of monitoring.
  for (SimTime t = 60; t <= kSecondsPerDay + kSecondsPerDay / 2; t += 60)
    monitor.on_tick(t);
  const MachineTrace observed = monitor.to_trace();
  EXPECT_EQ(observed.day_count(), 1);
  EXPECT_EQ(observed.at(0, 500).host_load_pct, 30);
}

TEST(ResourceMonitorTest, ObservedTraceMatchesSource) {
  // End-to-end: monitoring a replayed machine reproduces the source trace.
  MachineTrace source("m", Calendar(0), 60, 512);
  auto day = test::constant_day(60, 15);
  for (std::size_t i = 300; i < 340; ++i) day[i] = test::sample(85);
  for (std::size_t i = 700; i < 720; ++i) day[i].set_up(false);
  source.append_day(std::move(day));

  auto machine = make_replay_machine(source, test::test_thresholds());
  ResourceMonitor monitor(*machine);
  for (SimTime t = 60; t <= kSecondsPerDay; t += 60) monitor.on_tick(t);
  const MachineTrace observed = monitor.to_trace();
  ASSERT_EQ(observed.day_count(), 1);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < source.samples_per_day(); ++i) {
    const ResourceSample& a = source.at(0, i);
    const ResourceSample& b = observed.at(0, i);
    // Downtime is reconstructed with zero load, so compare liveness and, for
    // up samples, the full record.
    if (a.up() != b.up()) ++mismatches;
    else if (a.up() && !(a == b)) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u);
}

TEST(ResourceMonitorTest, OverheadBelowOnePercent) {
  const MachineTrace source = test::constant_trace(1, 10, 6);
  auto machine = make_replay_machine(source, test::test_thresholds());
  const ResourceMonitor monitor(*machine, /*cost_per_sample_seconds=*/0.01);
  EXPECT_LT(monitor.overhead_fraction(), 0.01);  // paper: < 1 % CPU
}

TEST(ResourceMonitorTest, RejectsOffPeriodTicks) {
  const MachineTrace source = test::constant_trace(1, 10, 60);
  auto machine = make_replay_machine(source, test::test_thresholds());
  ResourceMonitor monitor(*machine);
  EXPECT_THROW(monitor.on_tick(61), PreconditionError);
  EXPECT_THROW(monitor.on_tick(0), PreconditionError);
}

}  // namespace
}  // namespace fgcs
