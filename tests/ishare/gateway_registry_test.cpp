#include <gtest/gtest.h>

#include "ishare/gateway.hpp"
#include "ishare/registry.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

using test::constant_day;
using test::sample;

TEST(RegistryTest, PublishLookupUnpublish) {
  const MachineTrace trace = test::constant_trace(3, 10, 60);
  Gateway gateway(trace, test::test_thresholds());
  Registry registry;
  EXPECT_EQ(registry.size(), 0u);
  registry.publish(gateway);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.lookup("test"), &gateway);
  EXPECT_EQ(registry.lookup("missing"), nullptr);
  EXPECT_TRUE(registry.unpublish("test"));
  EXPECT_FALSE(registry.unpublish("test"));
  EXPECT_EQ(registry.size(), 0u);
}

TEST(RegistryTest, GatewaysOrderedById) {
  const MachineTrace a = test::constant_trace(2, 10, 60);
  MachineTrace b("alpha", Calendar(0), 60, 512);
  b.append_day(constant_day(60, 10));
  Gateway ga(a, test::test_thresholds());
  Gateway gb(b, test::test_thresholds());
  Registry registry;
  registry.publish(ga);
  registry.publish(gb);
  const auto all = registry.gateways();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->machine_id(), "alpha");
  EXPECT_EQ(all[1]->machine_id(), "test");
}

TEST(GatewayTest, ExecuteCompletesOnIdleMachine) {
  const MachineTrace trace = test::constant_trace(3, 5, 60);
  const Gateway gateway(trace, test::test_thresholds());
  // 1 CPU-hour on a 95%-idle machine: done in about 3790 wall seconds.
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 3600, .mem_mb = 100};
  const SimTime start = 2 * kSecondsPerDay + 9 * kSecondsPerHour;
  const ExecutionResult r = gateway.execute(job, start, start + kSecondsPerDay);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.failure.has_value());
  EXPECT_NEAR(static_cast<double>(r.end_time - start), 3600.0 / 0.95, 120.0);
  EXPECT_DOUBLE_EQ(r.progress_seconds, 3600.0);
}

TEST(GatewayTest, ExecuteFailsOnSteadyOverload) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  trace.append_day(constant_day(60, 10));
  auto day1 = constant_day(60, 10);
  for (std::size_t i = 10 * 60; i < 12 * 60; ++i) day1[i] = sample(95);
  trace.append_day(std::move(day1));

  const Gateway gateway(trace, test::test_thresholds());
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 4 * 3600, .mem_mb = 100};
  const SimTime start = kSecondsPerDay + 9 * kSecondsPerHour;
  const ExecutionResult r = gateway.execute(job, start, start + kSecondsPerDay);
  EXPECT_FALSE(r.completed);
  ASSERT_TRUE(r.failure.has_value());
  EXPECT_EQ(*r.failure, State::kS3);
  // Killed one transient-limit after the overload began at 10:00.
  EXPECT_NEAR(static_cast<double>(r.end_time),
              static_cast<double>(kSecondsPerDay + 10 * kSecondsPerHour + 60),
              120.0);
  EXPECT_DOUBLE_EQ(r.saved_progress_seconds, 0.0);  // no checkpointing
}

TEST(GatewayTest, FixedCheckpointingPreservesProgress) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  trace.append_day(constant_day(60, 5));
  auto day1 = constant_day(60, 5);
  for (std::size_t i = 11 * 60; i < 13 * 60; ++i) day1[i] = sample(95);
  trace.append_day(std::move(day1));

  const Gateway gateway(trace, test::test_thresholds());
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 6 * 3600, .mem_mb = 100};
  CheckpointConfig checkpoint;
  checkpoint.fixed_interval = 1800;
  checkpoint.cost_seconds = 30;
  const SimTime start = kSecondsPerDay + 9 * kSecondsPerHour;
  const ExecutionResult r =
      gateway.execute(job, start, start + kSecondsPerDay,
                      CheckpointMode::kFixed, checkpoint);
  EXPECT_FALSE(r.completed);
  EXPECT_GT(r.checkpoints_taken, 2);
  // Roughly two hours of work minus checkpoint costs were preserved.
  EXPECT_GT(r.saved_progress_seconds, 3600.0);
  EXPECT_LE(r.saved_progress_seconds, 2.0 * 3600.0);
}

TEST(GatewayTest, AdaptiveCheckpointIntervalFollowsPredictedTr) {
  // On an always-idle machine TR is 1, so an adaptive policy with a low
  // tr_low threshold uses the long interval, while tr_low > 1 forces the
  // short interval everywhere; checkpoint counts must reflect that.
  const MachineTrace trace = test::constant_trace(8, 5, 60);
  const Gateway gateway(trace, test::test_thresholds());
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 8 * 3600, .mem_mb = 64};
  const SimTime start = 7 * kSecondsPerDay + 8 * kSecondsPerHour;

  CheckpointConfig relaxed;
  relaxed.tr_low = 0.5;           // TR = 1 ≥ 0.5 → long interval (5400 s)
  relaxed.short_interval = 300;
  relaxed.long_interval = 5400;
  const ExecutionResult calm = gateway.execute(
      job, start, start + kSecondsPerDay, CheckpointMode::kAdaptive, relaxed);

  CheckpointConfig paranoid = relaxed;
  paranoid.tr_low = 1.1;          // TR < 1.1 always → short interval (300 s)
  const ExecutionResult nervous = gateway.execute(
      job, start, start + kSecondsPerDay, CheckpointMode::kAdaptive, paranoid);

  ASSERT_TRUE(calm.completed);
  ASSERT_TRUE(nervous.completed);
  EXPECT_GT(calm.checkpoints_taken, 0);
  EXPECT_GT(nervous.checkpoints_taken, 3 * calm.checkpoints_taken);
}

TEST(GatewayTest, CheckpointCostDelaysCompletion) {
  const MachineTrace trace = test::constant_trace(6, 5, 60);
  const Gateway gateway(trace, test::test_thresholds());
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 4 * 3600, .mem_mb = 64};
  const SimTime start = 5 * kSecondsPerDay + 8 * kSecondsPerHour;

  const ExecutionResult plain =
      gateway.execute(job, start, start + kSecondsPerDay);
  CheckpointConfig config;
  config.fixed_interval = 600;
  config.cost_seconds = 120;
  const ExecutionResult checkpointed = gateway.execute(
      job, start, start + kSecondsPerDay, CheckpointMode::kFixed, config);
  ASSERT_TRUE(plain.completed);
  ASSERT_TRUE(checkpointed.completed);
  EXPECT_GT(checkpointed.end_time, plain.end_time);
}

TEST(GatewayTest, QueryReliabilityUsesHistory) {
  MachineTrace trace("m", Calendar(0), 60, 512);
  for (int d = 0; d < 6; ++d) {
    auto day = constant_day(60, 10);
    if (d % 2 == 1)
      for (std::size_t i = 9 * 60; i < 11 * 60; ++i) day[i] = sample(95);
    trace.append_day(std::move(day));
  }
  const Gateway gateway(trace, test::test_thresholds());
  // Day 4 is a weekday (Monday epoch): training uses weekdays 0–3, of which
  // two carry the 9:00–11:00 overload.
  const SimTime now = 4 * kSecondsPerDay + 8 * kSecondsPerHour + 1800;
  const double tr = gateway.query_reliability(now, 4 * kSecondsPerHour);
  EXPECT_GT(tr, 0.0);
  EXPECT_LT(tr, 1.0);
}

TEST(GatewayTest, ExecuteValidatesArguments) {
  const MachineTrace trace = test::constant_trace(2, 10, 60);
  const Gateway gateway(trace, test::test_thresholds());
  GuestJobSpec job{.job_id = "j", .cpu_seconds = 10, .mem_mb = 100};
  EXPECT_THROW(gateway.execute(job, 100, 100), PreconditionError);
  job.cpu_seconds = 0;
  EXPECT_THROW(gateway.execute(job, 0, 100), PreconditionError);
}

}  // namespace
}  // namespace fgcs
