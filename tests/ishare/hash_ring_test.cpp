// Consistent-hash ring properties (DESIGN.md §11). Three pins:
//
//   * Determinism — the ring is a pure function of (member set, vnodes,
//     version): member order, reconstruction, and reseeding the version
//     must not move a single key. This is the property gossip convergence
//     rests on: every node that learns the same member set must route
//     identically with no coordinator.
//   * Balance — at 128 vnodes no member's share of a 10k-key set exceeds
//     1/N + ε (ε = 0.08): vnodes smooth the partition.
//   * Bounded movement — adding or removing one member remaps at most 2/N
//     of the key space, and every remapped key moves to/from the changed
//     member only; consistent hashing never reshuffles survivors.
#include "ishare/hash_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fgcs {
namespace {

std::vector<RingMember> make_members(int count) {
  std::vector<RingMember> members;
  for (int i = 0; i < count; ++i)
    members.push_back(RingMember{"node" + std::to_string(i), "10.0.0." +
                                     std::to_string(i + 1),
                                 static_cast<std::uint16_t>(9000 + i)});
  return members;
}

std::vector<std::string> make_keys(int count) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    keys.push_back("machine-" + std::to_string(i));
  return keys;
}

TEST(HashRingTest, EmptyRingOwnsNothing) {
  const HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.owner("anything"), nullptr);
  EXPECT_EQ(ring.member("node0"), nullptr);
  EXPECT_FALSE(ring.contains("node0"));
}

TEST(HashRingTest, ValidatesConstruction) {
  std::vector<RingMember> dup = make_members(2);
  dup.push_back(dup.front());
  EXPECT_THROW(HashRing(dup, 128), PreconditionError);
  EXPECT_THROW(HashRing(make_members(2), 0), PreconditionError);
}

TEST(HashRingTest, MemberLookupFindsEveryMemberAndOnlyMembers) {
  const HashRing ring(make_members(5), 128, 7);
  for (const RingMember& member : ring.members()) {
    ASSERT_NE(ring.member(member.node_id), nullptr);
    EXPECT_EQ(*ring.member(member.node_id), member);
    EXPECT_TRUE(ring.contains(member.node_id));
  }
  EXPECT_EQ(ring.member("node99"), nullptr);
  EXPECT_EQ(ring.vnodes(), 128u);
  EXPECT_EQ(ring.version(), 7u);
}

TEST(HashRingTest, MemberOrderDoesNotAffectRouting) {
  std::vector<RingMember> members = make_members(7);
  const HashRing forward(members, 128, 1);
  std::reverse(members.begin(), members.end());
  const HashRing reversed(members, 128, 1);
  Rng rng(42);
  std::vector<RingMember> shuffled = make_members(7);
  for (std::size_t i = shuffled.size(); i > 1; --i)
    std::swap(shuffled[i - 1], shuffled[static_cast<std::size_t>(
                                   rng.uniform_int(0, static_cast<std::int64_t>(
                                                          i - 1)))]);
  const HashRing permuted(shuffled, 128, 1);

  EXPECT_EQ(forward.digest(), reversed.digest());
  EXPECT_EQ(forward.digest(), permuted.digest());
  for (const std::string& key : make_keys(1000)) {
    const std::string& owner = forward.owner(key)->node_id;
    EXPECT_EQ(reversed.owner(key)->node_id, owner);
    EXPECT_EQ(permuted.owner(key)->node_id, owner);
  }
}

TEST(HashRingTest, ReseedingVersionNeverMovesAKey) {
  // The version is a staleness marker (kWrongShard answers quote it); it
  // must not perturb vnode placement, or every gossip-driven ring bump
  // would trigger a fleet-wide rebalance.
  const std::vector<RingMember> members = make_members(6);
  const HashRing v0(members, 128, 0);
  for (const std::uint64_t version : {1ull, 42ull, 0xdeadbeefull}) {
    const HashRing reseeded(members, 128, version);
    EXPECT_NE(reseeded.digest(), v0.digest());  // digest covers the version
    for (const std::string& key : make_keys(2000))
      EXPECT_EQ(reseeded.owner(key)->node_id, v0.owner(key)->node_id)
          << "version " << version << " moved " << key;
  }
}

TEST(HashRingTest, LoadImbalanceBoundedAt128Vnodes) {
  const std::vector<std::string> keys = make_keys(10000);
  for (const int n : {3, 5, 10}) {
    const HashRing ring(make_members(n), 128);
    std::map<std::string, int> load;
    for (const std::string& key : keys) ++load[ring.owner(key)->node_id];
    const double bound = 1.0 / n + 0.08;
    for (const auto& [node, count] : load)
      EXPECT_LE(count / 10000.0, bound)
          << node << " owns " << count << " of 10000 keys on an " << n
          << "-member ring";
    EXPECT_EQ(load.size(), static_cast<std::size_t>(n))
        << "some member owns nothing";
  }
}

TEST(HashRingTest, AddingOneMemberRemapsAtMostTwoNthsTowardIt) {
  const std::vector<std::string> keys = make_keys(10000);
  std::vector<RingMember> members = make_members(5);
  const HashRing before(members, 128);
  members.push_back(RingMember{"node5", "10.0.0.6", 9005});
  const HashRing after(members, 128);  // N = 6

  int moved = 0;
  for (const std::string& key : keys) {
    const std::string& was = before.owner(key)->node_id;
    const std::string& now = after.owner(key)->node_id;
    if (was == now) continue;
    ++moved;
    // Consistent hashing: a key only ever moves TO the new member.
    EXPECT_EQ(now, "node5") << key << " moved " << was << " -> " << now;
  }
  EXPECT_GT(moved, 0);
  EXPECT_LE(moved, 10000 * 2 / 6);
}

TEST(HashRingTest, RemovingOneMemberRemapsOnlyItsKeys) {
  const std::vector<std::string> keys = make_keys(10000);
  std::vector<RingMember> members = make_members(6);
  const HashRing before(members, 128);  // N = 6
  members.erase(members.begin() + 2);   // drop node2
  const HashRing after(members, 128);

  int moved = 0;
  for (const std::string& key : keys) {
    const std::string& was = before.owner(key)->node_id;
    const std::string& now = after.owner(key)->node_id;
    if (was == now) continue;
    ++moved;
    // Only the removed member's keys may move.
    EXPECT_EQ(was, "node2") << key << " moved " << was << " -> " << now;
  }
  EXPECT_GT(moved, 0);
  EXPECT_LE(moved, 10000 * 2 / 6);
}

TEST(HashRingTest, SurvivorsKeepTheirVnodePoints) {
  // The per-member point set depends only on that member's id, so a member
  // owns the same arcs in any ring it appears in — this is what the
  // movement bounds above rest on. Spot-check by routing against disjoint
  // pairs: a key owned by node0 in {node0,node1} and in {node0,node2} hashed
  // to the same arc both times.
  const HashRing pair01({{"node0"}, {"node1"}}, 128);
  const HashRing pair02({{"node0"}, {"node2"}}, 128);
  int agreements = 0;
  for (const std::string& key : make_keys(2000)) {
    const bool owned01 = pair01.owner(key)->node_id == "node0";
    const bool owned02 = pair02.owner(key)->node_id == "node0";
    agreements += owned01 == owned02;
  }
  // Identical point sets for node0 mean disagreement only where node1/node2
  // arcs differ; node0's own share (~half the circle) must agree.
  EXPECT_GT(agreements, 1000);
}

}  // namespace
}  // namespace fgcs
