// GossipAgent / GossipMesh unit battery (DESIGN.md §11): the merge
// semilattice (higher (incarnation, heartbeat) wins, worse health on exact
// ties, generation max-merged), SWIM-style self-refutation, phi accrual
// thresholds on the round clock, leave/rejoin tombstones, and the
// determinism contract — two identically-seeded meshes replay to identical
// digests and convergence rounds. The storm-under-failpoints coverage lives
// in tests/chaos/gossip_chaos_test.cpp.
#include "ishare/gossip.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace fgcs {
namespace {

MemberState member(const std::string& id, std::uint64_t incarnation,
                   std::uint64_t heartbeat,
                   MemberHealth health = MemberHealth::kAlive,
                   std::uint64_t generation = 0) {
  MemberState state;
  state.node_id = id;
  state.port = 9000;
  state.incarnation = incarnation;
  state.heartbeat = heartbeat;
  state.health = health;
  state.generation = generation;
  return state;
}

GossipMessage sync_of(const std::string& sender,
                      std::vector<MemberState> members) {
  GossipMessage message;
  message.sender = sender;
  message.members = std::move(members);
  return message;
}

const MemberState& record(const GossipAgent& agent, const std::string& id) {
  for (const MemberState& m : agent.members())
    if (m.node_id == id) return m;
  ADD_FAILURE() << "no record for " << id;
  static MemberState none;
  return none;
}

TEST(GossipAgentTest, HigherIncarnationWinsRegardlessOfHeartbeat) {
  GossipAgent agent(member("a", 0, 0));
  agent.handle_sync(sync_of("b", {member("x", 1, 100)}));
  // Older incarnation at a huge heartbeat must lose.
  agent.handle_sync(sync_of("b", {member("x", 0, 999999)}));
  EXPECT_EQ(record(agent, "x").incarnation, 1u);
  EXPECT_EQ(record(agent, "x").heartbeat, 100u);
  // Newer incarnation at a tiny heartbeat must win.
  agent.handle_sync(sync_of("b", {member("x", 2, 1)}));
  EXPECT_EQ(record(agent, "x").incarnation, 2u);
  EXPECT_EQ(record(agent, "x").heartbeat, 1u);
}

TEST(GossipAgentTest, ExactTieWorseHealthWins) {
  GossipAgent agent(member("a", 0, 0));
  agent.handle_sync(sync_of("b", {member("x", 3, 7, MemberHealth::kAlive)}));
  // Same (incarnation, heartbeat): a dead accusation sticks...
  agent.handle_sync(sync_of("b", {member("x", 3, 7, MemberHealth::kDead)}));
  EXPECT_EQ(record(agent, "x").health, MemberHealth::kDead);
  // ...and an alive record at the same coordinates cannot scrub it back.
  agent.handle_sync(sync_of("b", {member("x", 3, 7, MemberHealth::kAlive)}));
  EXPECT_EQ(record(agent, "x").health, MemberHealth::kDead);
  // Proof of life — an advanced heartbeat — resurrects.
  agent.handle_sync(sync_of("b", {member("x", 3, 8, MemberHealth::kAlive)}));
  EXPECT_EQ(record(agent, "x").health, MemberHealth::kAlive);
}

TEST(GossipAgentTest, MergeIsOrderIndependent) {
  // The semilattice property gossip convergence rests on: any delivery
  // order joins to the same table. Digest excludes heartbeats, so compare
  // full records too.
  const GossipMessage m1 = sync_of(
      "p", {member("x", 1, 5, MemberHealth::kSuspect, 2), member("y", 0, 9)});
  const GossipMessage m2 = sync_of(
      "q", {member("x", 1, 5, MemberHealth::kDead, 1), member("y", 0, 3)});
  GossipAgent forward(member("a", 0, 0));
  forward.handle_sync(m1);
  forward.handle_sync(m2);
  GossipAgent reversed(member("a", 0, 0));
  reversed.handle_sync(m2);
  reversed.handle_sync(m1);
  EXPECT_EQ(forward.digest(), reversed.digest());
  EXPECT_EQ(forward.members(), reversed.members());
  EXPECT_EQ(record(forward, "x").health, MemberHealth::kDead);
  EXPECT_EQ(record(forward, "y").heartbeat, 9u);
}

TEST(GossipAgentTest, GenerationMaxMergesIndependentlyOfLiveness) {
  GossipAgent agent(member("a", 0, 0));
  agent.handle_sync(sync_of("b", {member("x", 2, 10, MemberHealth::kAlive,
                                         /*generation=*/7)}));
  // A losing record (older incarnation) still raises the generation: the
  // history announcement and the liveness fields merge independently.
  agent.handle_sync(sync_of("b", {member("x", 1, 99, MemberHealth::kAlive,
                                         /*generation=*/9)}));
  EXPECT_EQ(record(agent, "x").incarnation, 2u);
  EXPECT_EQ(record(agent, "x").generation, 9u);
}

TEST(GossipAgentTest, RefutesDeadAccusationWithFreshIncarnation) {
  GossipAgent agent(member("a", 0, 0));
  agent.tick();  // heartbeat -> 1
  const MemberState self = agent.self();
  // An accusation at our exact (incarnation, heartbeat) would win the merge
  // tie — the agent must answer with a fresh incarnation instead.
  agent.handle_sync(sync_of("b", {member("a", self.incarnation, self.heartbeat,
                                         MemberHealth::kDead)}));
  EXPECT_EQ(agent.self().health, MemberHealth::kAlive);
  EXPECT_EQ(agent.self().incarnation, self.incarnation + 1);
  EXPECT_EQ(agent.stats().refutations, 1u);
}

TEST(GossipAgentTest, LeftTombstoneIsNotRefuted) {
  GossipAgent agent(member("a", 0, 0));
  agent.leave();
  const MemberState self = agent.self();
  agent.handle_sync(sync_of("b", {member("a", self.incarnation, self.heartbeat,
                                         MemberHealth::kDead)}));
  // A node that really left lets accusations stand; no incarnation bump.
  EXPECT_EQ(agent.self().health, MemberHealth::kLeft);
  EXPECT_EQ(agent.self().incarnation, self.incarnation);
  EXPECT_EQ(agent.stats().refutations, 0u);
}

TEST(GossipAgentTest, PhiSuspectsThenDeclaresDeadOnTheRoundClock) {
  // Default thresholds: suspect_phi 4, dead_phi 10, mean interval floors at
  // 1 round. A peer whose heartbeat never advances crosses suspect exactly
  // at round 4 and dead exactly at round 10.
  GossipAgent agent(member("a", 0, 0));
  agent.seed_peer(member("b", 0, 0));
  for (int round = 1; round <= 3; ++round) agent.tick();
  EXPECT_EQ(record(agent, "b").health, MemberHealth::kAlive);
  agent.tick();  // round 4
  EXPECT_EQ(record(agent, "b").health, MemberHealth::kSuspect);
  EXPECT_TRUE(agent.ring().contains("b")) << "suspect members stay routed";
  for (int round = 5; round <= 9; ++round) agent.tick();
  EXPECT_EQ(record(agent, "b").health, MemberHealth::kSuspect);
  agent.tick();  // round 10
  EXPECT_EQ(record(agent, "b").health, MemberHealth::kDead);
  EXPECT_FALSE(agent.ring().contains("b")) << "dead members leave the ring";
  EXPECT_EQ(agent.stats().suspicions, 1u);
  EXPECT_EQ(agent.stats().deaths, 1u);
}

TEST(GossipAgentTest, RejoinBeatsTheTombstone) {
  GossipAgent accuser(member("a", 0, 0));
  accuser.seed_peer(member("b", 0, 0));
  for (int round = 0; round < 10; ++round) accuser.tick();
  ASSERT_EQ(record(accuser, "b").health, MemberHealth::kDead);

  GossipAgent returned(member("b", 0, 0));
  returned.rejoin();  // fresh incarnation
  accuser.handle_sync(returned.make_sync());
  EXPECT_EQ(record(accuser, "b").health, MemberHealth::kAlive);
  EXPECT_TRUE(accuser.ring().contains("b"));
}

TEST(GossipAgentTest, AnnouncedGenerationPropagates) {
  GossipAgent a(member("a", 0, 0));
  GossipAgent b(member("b", 0, 0));
  a.seed_peer(b.self());
  b.announce_generation(41);
  b.announce_generation(17);  // max-merge: lower announcements are no-ops
  EXPECT_EQ(b.self().generation, 41u);
  a.handle_sync(b.make_sync());
  EXPECT_EQ(record(a, "b").generation, 41u);
}

TEST(GossipAgentTest, SeedPeerIgnoresSelfAndKnownIds) {
  GossipAgent agent(member("a", 0, 0));
  agent.seed_peer(member("a", 5, 5));  // self: ignored
  EXPECT_EQ(agent.self().incarnation, 0u);
  agent.seed_peer(member("b", 0, 0));
  agent.seed_peer(member("b", 9, 9));  // already known: ignored
  EXPECT_EQ(record(agent, "b").incarnation, 0u);
  EXPECT_EQ(agent.members().size(), 2u);
}

TEST(GossipMeshTest, BootstrapConvergesAndRingsAgree) {
  GossipMesh mesh;
  for (const char* id : {"n0", "n1", "n2", "n3"}) mesh.add_node(id);
  mesh.connect_all();
  const int rounds = mesh.run_until_converged(64);
  ASSERT_GE(rounds, 0) << "4-node bootstrap did not converge in 64 rounds";
  const HashRing ring = mesh.agent("n0").ring();
  EXPECT_EQ(ring.size(), 4u);
  for (const char* id : {"n1", "n2", "n3"}) {
    EXPECT_EQ(mesh.agent(id).ring().digest(), ring.digest());
    EXPECT_EQ(mesh.agent(id).digest(), mesh.agent("n0").digest());
  }
}

TEST(GossipMeshTest, IdenticallySeededMeshesReplayIdentically) {
  const auto storm = [](std::uint64_t seed) {
    GossipConfig config;
    config.seed = seed;
    GossipMesh mesh(config);
    for (const char* id : {"n0", "n1", "n2"}) mesh.add_node(id);
    mesh.connect_all();
    mesh.run_until_converged(64);
    mesh.partition({{"n0"}, {"n1", "n2"}});
    for (int r = 0; r < 6; ++r) mesh.run_round();
    mesh.heal();
    const int rounds = mesh.run_until_converged(128);
    return std::pair<int, std::uint64_t>(rounds, mesh.digest());
  };
  const auto first = storm(77);
  const auto second = storm(77);
  ASSERT_GE(first.first, 0);
  EXPECT_EQ(first, second);
  // A different seed reorders peer selection; the storm still converges.
  EXPECT_GE(storm(78).first, 0);
}

TEST(GossipMeshTest, PartitionHealsToOneView) {
  GossipMesh mesh;
  for (const char* id : {"n0", "n1", "n2"}) mesh.add_node(id);
  mesh.connect_all();
  ASSERT_GE(mesh.run_until_converged(64), 0);

  mesh.partition({{"n0"}, {"n1", "n2"}});
  for (int r = 0; r < 6; ++r) mesh.run_round();
  mesh.heal();
  ASSERT_GE(mesh.run_until_converged(128), 0);
  // A short split leaves at most suspicions, refuted or aged out by the
  // heal; the converged member set is the same three nodes.
  EXPECT_EQ(mesh.agent("n0").ring().size(), 3u);
}

TEST(GossipMeshTest, CrashIsDeclaredDeadAndRestartResurrects) {
  GossipMesh mesh;
  for (const char* id : {"n0", "n1", "n2"}) mesh.add_node(id);
  mesh.connect_all();
  ASSERT_GE(mesh.run_until_converged(64), 0);

  mesh.stop("n1");
  for (int r = 0; r < 24; ++r) mesh.run_round();
  EXPECT_EQ(record(mesh.agent("n0"), "n1").health, MemberHealth::kDead);
  EXPECT_FALSE(mesh.agent("n0").ring().contains("n1"));

  mesh.restart("n1");
  ASSERT_GE(mesh.run_until_converged(128), 0) << "restart never re-converged";
  EXPECT_EQ(record(mesh.agent("n0"), "n1").health, MemberHealth::kAlive);
  EXPECT_EQ(mesh.agent("n0").ring().size(), 3u);
}

TEST(GossipMeshTest, GracefulLeaveShrinksEveryRing) {
  GossipMesh mesh;
  for (const char* id : {"n0", "n1", "n2"}) mesh.add_node(id);
  mesh.connect_all();
  ASSERT_GE(mesh.run_until_converged(64), 0);

  mesh.agent("n2").leave();
  ASSERT_GE(mesh.run_until_converged(128), 0);
  for (const char* id : {"n0", "n1"}) {
    EXPECT_EQ(record(mesh.agent(id), "n2").health, MemberHealth::kLeft);
    EXPECT_FALSE(mesh.agent(id).ring().contains("n2"));
    EXPECT_EQ(mesh.agent(id).ring().size(), 2u);
  }
}

}  // namespace
}  // namespace fgcs
