// ShardedRegistry semantics (DESIGN.md §11): ring-routed publish/lookup,
// publish-before-drop rebalancing, and the documented mid-move transient —
// enumeration may yield the same machine twice — plus the regression that
// transient once exposed: ReplicatingScheduler's fleet probe must dedup by
// machine id, or a duplicated top-ranked machine double-counts as two
// "replicas" on one host (and crowds a real second machine out of the set).
#include "ishare/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "ishare/replication.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace fgcs {
namespace {

using test::constant_day;

MachineTrace idle_trace(const std::string& id, int days, int load_pct = 5) {
  MachineTrace trace(id, Calendar(0), 60, 512);
  for (int d = 0; d < days; ++d) trace.append_day(constant_day(60, load_pct));
  return trace;
}

HashRing two_node_ring() {
  return HashRing({{"nodeA", "127.0.0.1", 9001}, {"nodeB", "127.0.0.1", 9002}},
                  /*vnodes=*/128, /*version=*/1);
}

std::vector<std::string> enumerate_ids(const RegistryView& view) {
  std::vector<std::string> ids;
  for (const Gateway* gateway : view.gateways())
    ids.push_back(gateway->machine_id());
  return ids;
}

TEST(ShardedRegistryTest, PublishRoutesToTheOwningShard) {
  ShardedRegistry registry(two_node_ring());
  const MachineTrace trace = idle_trace("m0", 4);
  Gateway gateway(trace, test::test_thresholds());
  registry.publish(gateway);

  const std::string& owner = registry.ring().owner("m0")->node_id;
  const std::string other = owner == "nodeA" ? "nodeB" : "nodeA";
  EXPECT_EQ(registry.shard(owner).size(), 1u);
  EXPECT_EQ(registry.shard(other).size(), 0u);
  EXPECT_EQ(registry.lookup("m0"), &gateway);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_THROW(registry.shard("nodeC"), DataError);
}

TEST(ShardedRegistryTest, LookupFallsBackToScanForMisplacedEntries) {
  // An entry published under a previous ring can sit on the "wrong" shard
  // until rebalance; point lookup must still find it.
  ShardedRegistry registry(two_node_ring());
  const MachineTrace trace = idle_trace("m0", 4);
  Gateway gateway(trace, test::test_thresholds());
  const std::string& owner = registry.ring().owner("m0")->node_id;
  const std::string other = owner == "nodeA" ? "nodeB" : "nodeA";
  registry.shard(other).publish(gateway);  // stage the misplacement
  EXPECT_EQ(registry.lookup("m0"), &gateway);
}

TEST(ShardedRegistryTest, RebalanceRehomesEveryEntry) {
  ShardedRegistry registry(two_node_ring());
  std::vector<MachineTrace> traces;
  std::vector<std::unique_ptr<Gateway>> gateways;
  for (int m = 0; m < 8; ++m)
    traces.push_back(idle_trace("m" + std::to_string(m), 4));
  for (const MachineTrace& trace : traces) {
    gateways.push_back(
        std::make_unique<Gateway>(trace, test::test_thresholds()));
    registry.publish(*gateways.back());
  }

  HashRing grown({{"nodeA", "127.0.0.1", 9001},
                  {"nodeB", "127.0.0.1", 9002},
                  {"nodeC", "127.0.0.1", 9003}},
                 128, 2);
  registry.rebalance(grown);
  EXPECT_EQ(registry.size(), 8u) << "rebalance lost or duplicated entries";
  for (const auto& gateway : gateways) {
    const std::string& owner =
        registry.ring().owner(gateway->machine_id())->node_id;
    EXPECT_EQ(registry.shard(owner).lookup(gateway->machine_id()),
              gateway.get());
  }
}

TEST(ShardedRegistryTest, MidMoveEnumerationYieldsTheDuplicateByDesign) {
  ShardedRegistry registry(two_node_ring());
  const MachineTrace trace = idle_trace("m0", 4);
  Gateway gateway(trace, test::test_thresholds());
  registry.publish(gateway);
  const std::string& owner = registry.ring().owner("m0")->node_id;
  const std::string other = owner == "nodeA" ? "nodeB" : "nodeA";
  // Stage the documented mid-move state: published on the new home before
  // the old shard drops it.
  registry.shard(other).publish(gateway);

  const std::vector<std::string> ids = enumerate_ids(registry);
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), "m0"), 2);
  // unpublish sweeps every shard holding the id.
  EXPECT_TRUE(registry.unpublish("m0"));
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ShardedRegistryTest, FleetProbeDedupsAMidMoveDuplicate) {
  // Regression: with "best" enumerated twice (mid-move) and replicas = 2,
  // the pre-fix probe ranked [best, best] — two "replicas" on one host —
  // and the genuinely second machine never started. Make that host fail
  // on the submit day (its training days are clean, so it still ranks
  // top): pre-fix BOTH replicas die with it and the job is lost; post-fix
  // the set is [best, second] and the survivor completes.
  ShardedRegistry registry(two_node_ring());
  MachineTrace best("aa-best", Calendar(0), 60, 512);
  for (int d = 0; d < 5; ++d) best.append_day(constant_day(60, 5));
  {
    // Day 5 (the submit day): overload from 09:30, killing any guest.
    auto day = constant_day(60, 5);
    for (std::size_t i = 9 * 60 + 30; i < 14 * 60; ++i)
      day[i] = test::sample(95);
    best.append_day(std::move(day));
  }
  const MachineTrace second = idle_trace("bb-second", 6, 55);
  Gateway g_best(best, test::test_thresholds());
  Gateway g_second(second, test::test_thresholds());
  registry.publish(g_best);
  registry.publish(g_second);
  const std::string& owner = registry.ring().owner("aa-best")->node_id;
  const std::string other = owner == "nodeA" ? "nodeB" : "nodeA";
  registry.shard(other).publish(g_best);
  ASSERT_EQ(registry.size(), 3u) << "mid-move duplicate not staged";

  const ReplicatingScheduler scheduler(registry, /*replicas=*/2);
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 3600, .mem_mb = 64};
  const SimTime submit = 5 * kSecondsPerDay + 9 * kSecondsPerHour;
  const ReplicatedOutcome outcome =
      scheduler.run_job(job, submit, submit + kSecondsPerDay);
  ASSERT_TRUE(outcome.completed)
      << "both replicas were placed on the failing duplicated host";
  EXPECT_EQ(outcome.replicas_started, 2);
  EXPECT_EQ(outcome.winning_machine, "bb-second");
  EXPECT_EQ(outcome.replicas_failed, 1);
}

TEST(ShardedRegistryTest, FleetProbeDedupCapsReplicasAtDistinctHosts) {
  // One real machine enumerated twice must yield ONE replica, not two on
  // the same host — the sharpest observable of the dedup.
  ShardedRegistry registry(two_node_ring());
  const MachineTrace only = idle_trace("solo", 6);
  Gateway gateway(only, test::test_thresholds());
  registry.publish(gateway);
  const std::string& owner = registry.ring().owner("solo")->node_id;
  const std::string other = owner == "nodeA" ? "nodeB" : "nodeA";
  registry.shard(other).publish(gateway);
  ASSERT_EQ(registry.gateways().size(), 2u);

  const ReplicatingScheduler scheduler(registry, /*replicas=*/2);
  const GuestJobSpec job{.job_id = "j", .cpu_seconds = 1800, .mem_mb = 64};
  const SimTime submit = 5 * kSecondsPerDay + 9 * kSecondsPerHour;
  const ReplicatedOutcome outcome =
      scheduler.run_job(job, submit, submit + kSecondsPerDay);
  ASSERT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.replicas_started, 1)
      << "a mid-move duplicate was placed as a second replica";
  EXPECT_EQ(outcome.winning_machine, "solo");
}

}  // namespace
}  // namespace fgcs
