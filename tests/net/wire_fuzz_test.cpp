// Decoder fuzzing: the wire layer's contract is that NO byte sequence —
// truncated, bit-flipped, length-lying, or random — does anything but
// decode cleanly or throw DataError. Run under ASan/UBSan in CI, these
// tests also prove "no over-read, no leak, no UB" (a crash or sanitizer
// report here is a protocol bug by definition).
//
// Two layers: a hand-built corpus pinning each documented failure mode, and
// a seeded mutation storm (>1000 cases) over valid frames fed to a
// FrameDecoder in randomized chunk sizes. A live-server leg replays the
// corpus over real sockets and then proves the server still serves.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/prediction_service.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fgcs::net {
namespace {

/// Uniform draw from [0, n): the fuzz loops index and size with it.
std::size_t pick(Rng& rng, std::size_t n) {
  return n == 0 ? 0
               : static_cast<std::size_t>(
                     rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::vector<std::uint8_t> valid_request_frame() {
  const std::vector<WireRequestItem> items{
      {.machine_key = "m0",
       .request = {.target_day = 8,
                   .window = {.start_of_day = 9 * 3600, .length = 3600}}},
      {.machine_key = "m1",
       .request = {.target_day = 8,
                   .window = {.start_of_day = 14 * 3600, .length = 7200},
                   .initial_state = State::kS1}}};
  return encode_frame(FrameType::kRequest, encode_request(items));
}

std::vector<std::uint8_t> valid_response_frame() {
  std::vector<Prediction> results(3);
  results[0].temporal_reliability = 0.75;
  results[1].temporal_reliability = 1.0 / 3.0;
  results[2].p_absorb = {0.1, 0.2, 0.7};
  return encode_frame(FrameType::kResponse, encode_response(results));
}

/// A valid append frame whose batch straddles a (60 s period) day boundary —
/// the newest frame family in the storm, and the one carrying raw samples.
std::vector<std::uint8_t> valid_append_frame() {
  WireAppendRequest request;
  request.machine_id = "mon-7";
  request.epoch_day_of_week = 3;
  request.sampling_period = 60;
  request.total_mem_mb = 1024;
  request.first_sample_index = 1438;  // last 2 samples of day 0 + 3 of day 1
  for (int i = 0; i < 5; ++i) {
    ResourceSample sample;
    sample.host_load_pct = static_cast<std::uint8_t>(20 * i);
    sample.free_mem_mb = static_cast<std::uint16_t>(100 + i);
    sample.set_up(i != 2);
    request.samples.push_back(sample);
  }
  return encode_frame(FrameType::kAppendSamples, encode_append(request));
}

std::vector<std::uint8_t> valid_append_ack_frame() {
  return encode_frame(FrameType::kAppendAck,
                      encode_append_ack(WireAppendAck{.accepted = 5,
                                                      .next_index = 1443,
                                                      .days_closed = 1,
                                                      .generation = 1}));
}

/// A valid gossip sync carrying every health value — the wire v3 member
/// table the storm mutates.
std::vector<std::uint8_t> valid_gossip_frame() {
  GossipMessage message;
  message.sender = "reg0";
  MemberState alive;
  alive.node_id = "reg0";
  alive.port = 9000;
  alive.incarnation = 2;
  alive.heartbeat = 41;
  alive.generation = 3;
  MemberState left = alive;
  left.node_id = "reg1";
  left.health = MemberHealth::kLeft;
  message.members = {alive, left};
  return encode_frame(FrameType::kGossipSync, encode_gossip(message));
}

std::vector<std::uint8_t> valid_wrong_shard_frame() {
  const HashRing ring({{"reg0", "10.0.0.1", 9000}, {"reg1", "10.0.0.2", 9001}},
                      /*vnodes=*/64, /*version=*/7);
  return encode_frame(FrameType::kWrongShard, encode_wrong_shard(ring));
}

/// Feeds `bytes` to a fresh decoder in `rng`-sized chunks and drains it.
/// Returns "decoded at least one frame". Throws only DataError by contract.
bool drain(std::span<const std::uint8_t> bytes, Rng& rng) {
  FrameDecoder decoder;
  std::size_t offset = 0;
  bool any = false;
  while (offset < bytes.size()) {
    const std::size_t chunk = std::min<std::size_t>(
        1 + pick(rng, 64), bytes.size() - offset);
    decoder.feed(bytes.subspan(offset, chunk));
    offset += chunk;
    while (std::optional<Frame> frame = decoder.next()) {
      any = true;
      // A surviving frame must still decode (or payload-level DataError) —
      // exercise the payload decoders too, whatever the mutated type says.
      try {
        switch (frame->type) {
          case FrameType::kRequest:
            decode_request(frame->payload);
            break;
          case FrameType::kResponse:
            decode_response(frame->payload);
            break;
          case FrameType::kError:
            decode_error(frame->payload);
            break;
          case FrameType::kAppendSamples:
            decode_append(frame->payload);
            break;
          case FrameType::kAppendAck:
            decode_append_ack(frame->payload);
            break;
          case FrameType::kGossipSync:
          case FrameType::kGossipAck:
            decode_gossip(frame->payload);
            break;
          case FrameType::kWrongShard:
            decode_wrong_shard(frame->payload);
            break;
        }
      } catch (const DataError&) {
      }
    }
  }
  return any;
}

TEST(WireFuzz, SeededMutationStormThrowsDataErrorOnly) {
  const std::vector<std::vector<std::uint8_t>> bases{
      valid_request_frame(), valid_response_frame(), valid_append_frame(),
      valid_append_ack_frame(), valid_gossip_frame(),
      valid_wrong_shard_frame(),
      encode_frame(FrameType::kError,
                   encode_error("reference error text", true))};

  Rng rng(0xf0220000u);
  int mutations = 0;
  int rejected = 0;
  int survived = 0;
  for (int round = 0; round < 1200; ++round) {
    std::vector<std::uint8_t> bytes =
        bases[pick(rng, bases.size())];
    // 0–4 byte flips, then sometimes truncate or append junk — the
    // corruption families a real socket can produce. The zero-flip rounds
    // keep intact frames in the stream so `survived` proves the decoder
    // isn't just rejecting everything.
    const int flips = static_cast<int>(pick(rng, 5));
    for (int f = 0; f < flips; ++f)
      bytes[pick(rng, bytes.size())] ^=
          static_cast<std::uint8_t>(1 + pick(rng, 255));
    if (pick(rng, 4) == 0 && !bytes.empty())
      bytes.resize(pick(rng, bytes.size() + 1));
    if (pick(rng, 4) == 0) {
      const std::size_t junk = 1 + pick(rng, 32);
      for (std::size_t j = 0; j < junk; ++j)
        bytes.push_back(static_cast<std::uint8_t>(pick(rng, 256)));
    }
    ++mutations;
    try {
      if (drain(bytes, rng)) ++survived;
    } catch (const DataError&) {
      ++rejected;
    }
    // Any other exception type (or a sanitizer abort) fails the test run.
  }
  EXPECT_EQ(mutations, 1200);
  EXPECT_GT(rejected, 0) << "storm never produced an invalid frame";
  EXPECT_GT(survived, 0) << "storm never left a frame intact";
}

TEST(WireFuzz, RandomBytesIntoPayloadDecodersThrowCleanly) {
  Rng rng(0xdec0de01u);
  for (int round = 0; round < 400; ++round) {
    std::vector<std::uint8_t> junk(pick(rng, 160));
    for (std::uint8_t& byte : junk)
      byte = static_cast<std::uint8_t>(pick(rng, 256));
    try {
      decode_request(junk);
    } catch (const DataError&) {
    }
    try {
      decode_response(junk);
    } catch (const DataError&) {
    }
    try {
      decode_error(junk);
    } catch (const DataError&) {
    }
    try {
      decode_append(junk);
    } catch (const DataError&) {
    }
    try {
      decode_append_ack(junk);
    } catch (const DataError&) {
    }
  }
}

// ---- hand-built corpus: one case per documented failure mode ----

std::vector<std::uint8_t> patched_frame(std::size_t offset,
                                        std::uint32_t value) {
  std::vector<std::uint8_t> bytes = valid_request_frame();
  std::memcpy(bytes.data() + offset, &value, sizeof(value));
  return bytes;
}

TEST(WireFuzzCorpus, TruncatedHeaderIsIncompleteNotError) {
  const std::vector<std::uint8_t> bytes = valid_request_frame();
  FrameDecoder decoder;
  decoder.feed({bytes.data(), kHeaderBytes - 1});
  EXPECT_FALSE(decoder.next().has_value());  // still waiting, not desynced
}

TEST(WireFuzzCorpus, WrongMagicThrows) {
  FrameDecoder decoder;
  decoder.feed(patched_frame(0, 0xdeadbeefu));
  EXPECT_THROW(decoder.next(), DataError);
}

TEST(WireFuzzCorpus, BadVersionThrows) {
  std::vector<std::uint8_t> bytes = valid_request_frame();
  bytes[4] = 0x7f;
  FrameDecoder decoder;
  decoder.feed(bytes);
  EXPECT_THROW(decoder.next(), DataError);
}

TEST(WireFuzzCorpus, BadFrameTypeThrows) {
  std::vector<std::uint8_t> bytes = valid_request_frame();
  bytes[6] = 99;
  FrameDecoder decoder;
  decoder.feed(bytes);
  EXPECT_THROW(decoder.next(), DataError);
}

TEST(WireFuzzCorpus, LengthOverflowThrowsWithoutAllocating) {
  // Header claims a 4 GiB payload: must be rejected from the header alone,
  // never treated as "wait for 4 GiB" or an allocation request.
  FrameDecoder decoder;
  decoder.feed(patched_frame(8, 0xffffffffu));
  EXPECT_THROW(decoder.next(), DataError);
}

TEST(WireFuzzCorpus, LengthJustOverLimitThrows) {
  FrameDecoder decoder;
  decoder.feed(patched_frame(8, kMaxPayloadBytes + 1));
  EXPECT_THROW(decoder.next(), DataError);
}

TEST(WireFuzzCorpus, ZeroLengthFrameIsValidWithMatchingChecksum) {
  const std::vector<std::uint8_t> frame = encode_frame(FrameType::kError, {});
  FrameDecoder decoder;
  decoder.feed(frame);
  const std::optional<Frame> out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->payload.empty());
}

TEST(WireFuzzCorpus, ChecksumMismatchThrows) {
  std::vector<std::uint8_t> bytes = valid_request_frame();
  bytes[bytes.size() - 1] ^= 0x40;
  FrameDecoder decoder;
  decoder.feed(bytes);
  EXPECT_THROW(decoder.next(), DataError);
}

TEST(WireFuzzCorpus, PathologicalBatchCountsThrow) {
  // count = kMaxBatchItems + 1 with an otherwise-plausible payload.
  std::vector<std::uint8_t> payload =
      encode_request(std::vector<WireRequestItem>{});
  const std::uint32_t huge = kMaxBatchItems + 1;
  std::memcpy(payload.data(), &huge, sizeof(huge));
  EXPECT_THROW(decode_request(payload), DataError);

  // count = 0xFFFFFFFF over a 4-byte payload: the per-item size pre-check
  // must reject before any reserve/allocation happens.
  const std::uint32_t lie = 0xffffffffu;
  std::vector<std::uint8_t> tiny(4);
  std::memcpy(tiny.data(), &lie, sizeof(lie));
  EXPECT_THROW(decode_request(tiny), DataError);
  EXPECT_THROW(decode_response(tiny), DataError);

  // Response whose count disagrees with the actual byte count.
  std::vector<Prediction> one(1);
  std::vector<std::uint8_t> response = encode_response(one);
  const std::uint32_t two = 2;
  std::memcpy(response.data(), &two, sizeof(two));
  EXPECT_THROW(decode_response(response), DataError);
}

TEST(WireFuzzCorpus, BadInitialStateByteThrows) {
  std::vector<std::uint8_t> payload = encode_request(
      std::vector<WireRequestItem>{{.machine_key = "k", .request = {}}});
  payload.back() = 200;  // init byte: valid range is 0..kStateCount
  EXPECT_THROW(decode_request(payload), DataError);
}

TEST(WireFuzzCorpus, TrailingGarbageAfterRequestThrows) {
  std::vector<std::uint8_t> payload = encode_request(
      std::vector<WireRequestItem>{{.machine_key = "k", .request = {}}});
  payload.push_back(0);
  EXPECT_THROW(decode_request(payload), DataError);
}

// ---- append-frame corpus: the kAppendSamples failure families ----

/// Byte offset of the append payload's count field (after the frame header):
/// u16 key_len + key + u8 dow + i64 period + u32 mem + u64 first_index.
std::size_t append_count_offset(const std::string& machine_id) {
  return kHeaderBytes + 2 + machine_id.size() + 1 + 8 + 4 + 8;
}

TEST(WireFuzzCorpus, AppendTruncatedPayloadThrows) {
  // Chop inside the sample array: header length vs payload disagree — the
  // decoder must wait, then the checksum/count mismatch rejects the frame.
  std::vector<std::uint8_t> bytes = valid_append_frame();
  bytes.resize(bytes.size() - 3);
  FrameDecoder decoder;
  decoder.feed(bytes);
  EXPECT_FALSE(decoder.next().has_value());  // incomplete, not desynced
  // Payload-level truncation with a consistent frame: re-encode by hand.
  WireAppendRequest request = decode_append(
      [] {
        FrameDecoder inner;
        inner.feed(valid_append_frame());
        return inner.next()->payload;
      }());
  std::vector<std::uint8_t> payload = encode_append(request);
  payload.resize(payload.size() - 2);  // half a sample missing
  EXPECT_THROW(decode_append(payload), DataError);
}

TEST(WireFuzzCorpus, AppendOverlongPayloadThrows) {
  FrameDecoder decoder;
  decoder.feed(valid_append_frame());
  std::vector<std::uint8_t> payload = decoder.next()->payload;
  payload.push_back(0xab);  // one stray byte after the last sample
  EXPECT_THROW(decode_append(payload), DataError);
}

TEST(WireFuzzCorpus, AppendCountLyingAboutPayloadThrows) {
  FrameDecoder decoder;
  decoder.feed(valid_append_frame());
  std::vector<std::uint8_t> payload = decoder.next()->payload;
  const std::size_t offset = append_count_offset("mon-7") - kHeaderBytes;
  // Claim one more sample than the bytes carry; then a huge count that must
  // be rejected before any allocation.
  std::uint32_t lie = 6;
  std::memcpy(payload.data() + offset, &lie, sizeof(lie));
  EXPECT_THROW(decode_append(payload), DataError);
  lie = 0xffffffffu;
  std::memcpy(payload.data() + offset, &lie, sizeof(lie));
  EXPECT_THROW(decode_append(payload), DataError);
  lie = 0;
  std::memcpy(payload.data() + offset, &lie, sizeof(lie));
  EXPECT_THROW(decode_append(payload), DataError);
  lie = kMaxAppendSamples + 1;
  std::memcpy(payload.data() + offset, &lie, sizeof(lie));
  EXPECT_THROW(decode_append(payload), DataError);
}

TEST(WireFuzzCorpus, AppendBadSpecBytesThrow) {
  WireAppendRequest request;
  request.machine_id = "m";
  request.sampling_period = 60;
  request.samples.assign(2, ResourceSample{});
  std::vector<std::uint8_t> payload = encode_append(request);
  // dow byte sits right after the u16 key length + 1-byte key.
  std::vector<std::uint8_t> bad = payload;
  bad[2 + 1] = 7;
  EXPECT_THROW(decode_append(bad), DataError);
  // period: the i64 after the dow byte; 7 does not divide 86 400.
  bad = payload;
  std::int64_t period = 7;
  std::memcpy(bad.data() + 2 + 1 + 1, &period, sizeof(period));
  EXPECT_THROW(decode_append(bad), DataError);
  period = 0;
  std::memcpy(bad.data() + 2 + 1 + 1, &period, sizeof(period));
  EXPECT_THROW(decode_append(bad), DataError);
  // load percent > 100 inside a sample (first payload byte of sample 0).
  bad = payload;
  bad[bad.size() - 8] = 101;
  EXPECT_THROW(decode_append(bad), DataError);
}

// ---- live-server leg: the corpus over real sockets ----

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                      sizeof(address)),
            0);
  return fd;
}

TEST(WireFuzz, ServerSurvivesCorpusAndKeepsServing) {
  const MachineTrace trace = test::constant_trace(/*days=*/8, /*load_pct=*/10);
  PredictionServer server(ServerConfig{},
                          std::make_shared<PredictionService>());
  server.add_trace(trace);
  server.start();

  // Hand corpus + a slice of the mutation storm, one connection each —
  // write, give the server a beat, and move on. Dead connections are the
  // expected outcome; a dead *server* fails the final round-trip below.
  std::vector<std::vector<std::uint8_t>> corpus{
      patched_frame(0, 0xdeadbeefu),
      patched_frame(8, 0xffffffffu),
      {0x01, 0x02, 0x03},
      std::vector<std::uint8_t>(kHeaderBytes - 3, 0xab),
  };
  Rng rng(0x5e12f022u);
  for (int round = 0; round < 100; ++round) {
    std::vector<std::uint8_t> bytes = valid_request_frame();
    const int flips = 1 + static_cast<int>(pick(rng, 4));
    for (int f = 0; f < flips; ++f)
      bytes[pick(rng, bytes.size())] ^=
          static_cast<std::uint8_t>(1 + pick(rng, 255));
    corpus.push_back(std::move(bytes));
  }

  for (const std::vector<std::uint8_t>& blob : corpus) {
    const int fd = connect_loopback(server.port());
    (void)!::write(fd, blob.data(), blob.size());
    // Half the time, read whatever the server answered (error frame, EOF, or
    // — for a mutation that still looks like an incomplete frame — nothing,
    // hence the receive timeout); the other half just slam the connection
    // shut mid-exchange.
    if (pick(rng, 2) == 0) {
      const timeval patience{.tv_sec = 0, .tv_usec = 50 * 1000};
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &patience, sizeof(patience));
      char sink[256];
      (void)!::read(fd, sink, sizeof(sink));
    }
    ::close(fd);
  }

  // The server must still accept and serve a clean request, bit-identically.
  ClientConfig client_config;
  client_config.port = server.port();
  PredictionClient client(client_config);
  const WireRequestItem item{
      .machine_key = trace.machine_id(),
      .request = {.target_day = trace.day_count(),
                  .window = {.start_of_day = 9 * 3600, .length = 3600}}};
  const Prediction served = client.predict(item);
  const Prediction expected =
      AvailabilityPredictor().predict(trace, item.request);
  EXPECT_EQ(std::memcmp(&served.temporal_reliability,
                        &expected.temporal_reliability, sizeof(double)),
            0);
  server.stop();
  EXPECT_GT(server.stats().accepted, corpus.size());
}

// ---- live-server ingest leg: out-of-order and hostile appends over sockets ----

TEST(WireFuzz, IngestServerSurvivesHostileAppendStream) {
  const auto service = std::make_shared<PredictionService>();
  ServerConfig server_config;
  server_config.ingest = true;
  PredictionServer server(server_config, service);
  server.start();
  ClientConfig client_config;
  client_config.port = server.port();
  PredictionClient client(client_config);

  WireAppendRequest request;
  request.machine_id = "hostile";
  request.sampling_period = 8640;  // 10 samples/day: boundaries come fast
  request.total_mem_mb = 256;
  request.samples.assign(25, ResourceSample{});  // 2.5 days in one frame

  // Clean append, then out-of-order timestamps: a frame starting beyond the
  // frontier (gap) rejects fail-fast; one starting before it (overlap)
  // dedups; day-straddling is the normal case throughout.
  const WireAppendAck first = client.append_samples(request);
  EXPECT_EQ(first.accepted, 25u);
  EXPECT_EQ(first.days_closed, 2u);
  request.first_sample_index = 40;  // gap: frontier is 25
  EXPECT_THROW(client.append_samples(request), RemoteError);
  request.first_sample_index = 20;  // overlap: 5 duplicates, 20 fresh
  const WireAppendAck overlap = client.append_samples(request);
  EXPECT_EQ(overlap.duplicates, 5u);
  EXPECT_EQ(overlap.accepted, 20u);
  EXPECT_EQ(overlap.next_index, 45u);

  // Mutated append frames over raw sockets: the server must reject or drop
  // them without dying...
  Rng rng(0x19e57001u);
  for (int round = 0; round < 60; ++round) {
    std::vector<std::uint8_t> bytes = valid_append_frame();
    const int flips = 1 + static_cast<int>(pick(rng, 4));
    for (int f = 0; f < flips; ++f)
      bytes[pick(rng, bytes.size())] ^=
          static_cast<std::uint8_t>(1 + pick(rng, 255));
    const int fd = connect_loopback(server.port());
    (void)!::write(fd, bytes.data(), bytes.size());
    if (pick(rng, 2) == 0) {
      const timeval patience{.tv_sec = 0, .tv_usec = 50 * 1000};
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &patience, sizeof(patience));
      char sink[256];
      (void)!::read(fd, sink, sizeof(sink));
    }
    ::close(fd);
  }

  // ...and still ingest and serve afterwards.
  request.first_sample_index = 45;
  request.samples.assign(5, ResourceSample{});
  const WireAppendAck after = client.append_samples(request);
  EXPECT_EQ(after.next_index, 50u);
  EXPECT_EQ(after.generation, 5u);
  server.stop();
}

}  // namespace
}  // namespace fgcs::net
