// Loadgen invariants (src/net/loadgen.{hpp,cpp}, docs/BENCHMARKS.md):
// the plan is a pure function of the config (same seed ⇒ byte-identical
// schedule, pinned through digest() and through the fgcs_loadgen
// --plan-only subprocess output), the Zipf draw actually skews toward hot
// keys, mixes shape the schedule as documented, and a small end-to-end run
// against an in-process 2-reactor server completes every op.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/prediction_service.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "workload/trace_generator.hpp"

#ifndef FGCS_LOADGEN_BIN
#error "build must define FGCS_LOADGEN_BIN (path to the fgcs_loadgen tool)"
#endif

namespace fgcs::net {
namespace {

LoadgenConfig base_config() {
  LoadgenConfig config;
  config.seed = 99;
  config.offered_rate = 500;
  config.total_ops = 400;
  config.connections = 4;
  config.key_count = 8;
  return config;
}

TEST(Loadgen, SameSeedBuildsByteIdenticalPlans) {
  const LoadgenConfig config = base_config();
  const LoadgenPlan a = build_plan(config);
  const LoadgenPlan b = build_plan(config);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  EXPECT_EQ(a.digest(), b.digest());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].scheduled, b.ops[i].scheduled);
    EXPECT_EQ(a.ops[i].connection, b.ops[i].connection);
    EXPECT_EQ(a.ops[i].reconnect, b.ops[i].reconnect);
    EXPECT_EQ(a.ops[i].window, b.ops[i].window);
    EXPECT_EQ(a.ops[i].keys, b.ops[i].keys);
  }

  LoadgenConfig other = config;
  other.seed = 100;
  EXPECT_NE(build_plan(other).digest(), a.digest());
}

TEST(Loadgen, ScheduleIsOpenLoopPoissonAtTheOfferedRate) {
  const LoadgenConfig config = base_config();
  const LoadgenPlan plan = build_plan(config);
  ASSERT_EQ(plan.ops.size(), config.total_ops);
  double previous = 0;
  for (const LoadgenOp& op : plan.ops) {
    EXPECT_GE(op.scheduled, previous);  // arrivals are a monotone clock
    previous = op.scheduled;
    EXPECT_LT(op.connection, config.connections);
    EXPECT_GE(op.keys.size(), config.batch_min);
    EXPECT_LE(op.keys.size(), config.batch_max);
    for (const std::uint32_t key : op.keys) EXPECT_LT(key, config.key_count);
  }
  // 400 exponential gaps at 500/s: the horizon concentrates near 0.8s.
  const double expected = static_cast<double>(config.total_ops) /
                          config.offered_rate;
  EXPECT_GT(plan.horizon, expected * 0.5);
  EXPECT_LT(plan.horizon, expected * 2.0);
}

TEST(Loadgen, ZipfSkewsDrawsTowardHotKeys) {
  LoadgenConfig config = base_config();
  config.total_ops = 2000;
  config.zipf_theta = 0.99;
  config.key_count = 16;
  const LoadgenPlan plan = build_plan(config);
  std::vector<std::size_t> counts(config.key_count, 0);
  for (const LoadgenOp& op : plan.ops)
    for (const std::uint32_t key : op.keys) ++counts[key];
  // Rank 1 beats rank 16 by far under θ≈1 (expected ratio ~16×; require 4×
  // to stay robust to seed luck).
  EXPECT_GE(counts.front(), 4 * std::max<std::size_t>(counts.back(), 1));

  // θ=0 is uniform: the hottest key holds no outsized share.
  config.zipf_theta = 0;
  const LoadgenPlan uniform = build_plan(config);
  std::vector<std::size_t> flat(config.key_count, 0);
  std::size_t total = 0;
  for (const LoadgenOp& op : uniform.ops)
    for (const std::uint32_t key : op.keys) ++flat[key], ++total;
  for (const std::size_t count : flat)
    EXPECT_LT(count, total / 4);  // 16 keys: uniform share is ~6%
}

TEST(Loadgen, MixKnobsShapeReconnectsAndWindows) {
  LoadgenConfig read = base_config();
  read.reconnect_prob = 0;
  const LoadgenPlan read_plan = build_plan(read);
  for (const LoadgenOp& op : read_plan.ops) EXPECT_FALSE(op.reconnect);

  LoadgenConfig churn = base_config();
  churn.reconnect_prob = 0.3;
  churn.distinct_windows = 32;
  const LoadgenPlan churn_plan = build_plan(churn);
  EXPECT_EQ(churn_plan.windows.size(), 32u);
  std::size_t reconnects = 0;
  for (const LoadgenOp& op : churn_plan.ops) reconnects += op.reconnect;
  // 400 ops at p=0.3: far from both 0 and 400.
  EXPECT_GT(reconnects, 400 * 0.15);
  EXPECT_LT(reconnects, 400 * 0.45);
}

TEST(Loadgen, RunAgainstTwoReactorServerCompletesEveryOp) {
  WorkloadParams params;
  params.sampling_period = 60;
  const std::vector<MachineTrace> fleet =
      generate_fleet(params, /*seed=*/555, /*count=*/2, /*days=*/8, "lg");
  std::vector<std::string> keys;
  for (const MachineTrace& trace : fleet) keys.push_back(trace.machine_id());

  ServerConfig server_config;
  server_config.reactors = 2;
  PredictionServer server(server_config,
                          std::make_shared<PredictionService>());
  for (const MachineTrace& trace : fleet) server.add_trace(trace);
  server.start();

  LoadgenConfig config = base_config();
  config.total_ops = 120;
  config.offered_rate = 300;
  config.key_count = keys.size();
  config.reconnect_prob = 0.2;  // exercise the churn path end to end
  config.target_day = static_cast<std::int64_t>(fleet.front().day_count());
  const LoadgenPlan plan = build_plan(config);
  const LoadgenResult result =
      run_plan(config, plan, server.host(), server.port(), keys);
  server.stop();

  EXPECT_EQ(result.ops, config.total_ops);
  EXPECT_EQ(result.completed, config.total_ops);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GE(result.predictions, config.total_ops * config.batch_min);
  EXPECT_GT(result.wall_seconds, 0);
  EXPECT_GT(result.achieved_rate, 0);
  // Quantiles must be coherent: nonnegative and monotone.
  EXPECT_GE(result.p50_ms, 0);
  EXPECT_LE(result.p50_ms, result.p99_ms);
  EXPECT_LE(result.p99_ms, result.p999_ms);
  EXPECT_LE(result.p999_ms, result.max_ms);
  // The server saw exactly the plan's ops (reconnects change accepts, not
  // request counts).
  EXPECT_EQ(server.stats().requests, config.total_ops);
  EXPECT_EQ(server.stats().responses, config.total_ops);
  EXPECT_EQ(server.stats().errors, 0u);
}

TEST(Loadgen, PlanOnlySubprocessOutputIsByteIdentical) {
  const std::string command = std::string(FGCS_LOADGEN_BIN) +
                              " --plan-only --seed 31 --ops 200 --mix churn "
                              "2>&1";
  const auto capture = [&command]() {
    FILE* pipe = ::popen(("timeout 120 " + command).c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string output;
    std::array<char, 4096> buffer;
    while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr)
      output += buffer.data();
    EXPECT_EQ(::pclose(pipe), 0);
    return output;
  };
  const std::string first = capture();
  const std::string second = capture();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("digest="), std::string::npos);
}

}  // namespace
}  // namespace fgcs::net
