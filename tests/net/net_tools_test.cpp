// End-to-end tool tests: fgcs_serve --selfcheck as a subprocess, and a full
// serve → `fgcs_predict --batch --connect` round trip whose TR report must
// match the in-process `--batch` report line for line. Binary locations are
// injected by the build (FGCS_SERVE_BIN etc. — generator expressions in
// tests/CMakeLists.txt), so the test exercises the installed entry points,
// not relinked test doubles.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#if !defined(FGCS_SERVE_BIN) || !defined(FGCS_PREDICT_BIN) || \
    !defined(FGCS_GEN_BIN)
#error "build must define FGCS_SERVE_BIN, FGCS_PREDICT_BIN, FGCS_GEN_BIN"
#endif

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int status = -1;
  std::string output;
};

/// Runs a shell command, capturing stdout+stderr. Every command is wrapped in
/// coreutils `timeout` so a wedged tool fails the test instead of hanging it.
RunResult run(const std::string& command) {
  RunResult result;
  FILE* pipe = ::popen(("timeout 120 " + command + " 2>&1").c_str(), "r");
  if (!pipe) return result;
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), pipe)) result.output += buffer;
  const int raw = ::pclose(pipe);
  result.status = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  return result;
}

/// The prediction report proper: lines that are not comments or tool chatter.
std::vector<std::string> tr_lines(const std::string& output) {
  std::vector<std::string> lines;
  std::istringstream stream(output);
  std::string line;
  while (std::getline(stream, line))
    if (line.find(" TR ") != std::string::npos) lines.push_back(line);
  return lines;
}

TEST(NetTools, ServeSelfcheckPassesBitIdentityColdAndWarm) {
  const RunResult result = run(std::string(FGCS_SERVE_BIN) + " --selfcheck");
  EXPECT_EQ(result.status, 0) << result.output;
  EXPECT_NE(result.output.find("cold pass OK"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("warm pass OK"), std::string::npos)
      << result.output;
}

TEST(NetTools, ConnectModeReportMatchesLocalBatchMode) {
  const fs::path dir = fs::current_path() / "net-tools-test";
  fs::create_directories(dir);

  const RunResult gen =
      run(std::string(FGCS_GEN_BIN) + " --out " + dir.string() +
          " --machines 2 --days 10 --seed 11 --period 60 --prefix nettool");
  ASSERT_EQ(gen.status, 0) << gen.output;
  const std::string trace0 = (dir / "nettool00.fgcs").string();
  const std::string trace1 = (dir / "nettool01.fgcs").string();
  ASSERT_TRUE(fs::exists(trace0) && fs::exists(trace1)) << gen.output;

  const fs::path batch = dir / "batch.txt";
  {
    std::ofstream out(batch);
    out << "# trace start hours [day] [init]\n"
        << trace0 << " 09:00 2\n"
        << trace1 << " 14:00 3\n"
        << trace0 << " 22:00 1 8 S1\n";
  }

  const RunResult local =
      run(std::string(FGCS_PREDICT_BIN) + " --batch " + batch.string());
  ASSERT_EQ(local.status, 0) << local.output;
  const std::vector<std::string> expected = tr_lines(local.output);
  ASSERT_EQ(expected.size(), 3u) << local.output;

  // Serve on an ephemeral port; --max-requests 1 makes the server exit on its
  // own once the remote batch (one request frame) has been answered, so
  // pclose() below observes a clean shutdown instead of killing it. The batch
  // file names machines by trace path, so path loading must be opted in —
  // and is sandboxed to the test directory via --load-root.
  FILE* server = ::popen(("timeout 120 " + std::string(FGCS_SERVE_BIN) +
                          " --port 0 --max-requests 1 --load-root " +
                          dir.string() + " " + trace0 + " " + trace1 +
                          " 2>&1")
                             .c_str(),
                         "r");
  ASSERT_NE(server, nullptr);
  std::string server_output;
  std::uint16_t port = 0;
  char line[512];
  while (std::fgets(line, sizeof(line), server)) {
    server_output += line;
    const std::string text(line);
    const std::size_t at = text.find("listening on 127.0.0.1:");
    if (at != std::string::npos) {
      port = static_cast<std::uint16_t>(
          std::stoi(text.substr(at + std::string("listening on 127.0.0.1:").size())));
      break;
    }
  }
  ASSERT_NE(port, 0) << "no listening line from fgcs_serve:\n" << server_output;

  const RunResult remote =
      run(std::string(FGCS_PREDICT_BIN) + " --batch " + batch.string() +
          " --connect 127.0.0.1:" + std::to_string(port));

  // Drain the server's remaining output and reap it before judging anything,
  // so a failure report includes what the server saw.
  while (std::fgets(line, sizeof(line), server)) server_output += line;
  const int server_raw = ::pclose(server);

  ASSERT_EQ(remote.status, 0) << remote.output << "\nserver:\n"
                              << server_output;
  EXPECT_NE(remote.output.find("# net: 127.0.0.1:"), std::string::npos)
      << remote.output;
  const std::vector<std::string> served = tr_lines(remote.output);
  ASSERT_EQ(served.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(served[i], expected[i]) << "row " << i << " diverged over the wire";

  EXPECT_TRUE(WIFEXITED(server_raw) && WEXITSTATUS(server_raw) == 0)
      << server_output;
  EXPECT_NE(server_output.find("served 1 requests (3 predictions"),
            std::string::npos)
      << server_output;
}

}  // namespace
