// Multi-reactor server invariants (src/net/server.{hpp,cpp}):
//
//  - ServerStats is an *aggregation*: stats() must equal the field-wise sum
//    of reactor_stats() — there is no separate global counter set to drift
//    or double count (the ISSUE-6 stats fix).
//  - Strict ownership: in hand-off mode connections are placed round-robin,
//    so with sequential connects the per-reactor counters prove every
//    connection's frames were serviced by exactly the reactor that owns it.
//  - SO_REUSEPORT mode serves every connection correctly regardless of how
//    the kernel spreads them.
//  - A connection that pipelines requests gets its responses strictly in
//    request order (the per-connection busy/pending queue).
//
// Plus the MpscQueue primitive the reactors hand off through.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/prediction_service.hpp"
#include "core/predictor.hpp"
#include "net/client.hpp"
#include "net/mpsc_queue.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "workload/trace_generator.hpp"

namespace fgcs::net {
namespace {

std::vector<MachineTrace> small_fleet(std::size_t count = 2) {
  WorkloadParams params;
  params.sampling_period = 60;
  return generate_fleet(params, /*seed=*/424242, count, /*days=*/10,
                        "reactor");
}

WireRequestItem item_for(const MachineTrace& trace, SimTime start_hour) {
  return WireRequestItem{
      .machine_key = trace.machine_id(),
      .request = {.target_day = trace.day_count(),
                  .window = {.start_of_day = start_hour * kSecondsPerHour,
                             .length = 2 * kSecondsPerHour}}};
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

ServerStats sum_stats(const std::vector<ServerStats>& shards) {
  ServerStats total;
  for (const ServerStats& shard : shards) total += shard;
  return total;
}

// ---------------------------------------------------------------------------
// MpscQueue

struct TestNode {
  TestNode* next = nullptr;
  int producer = 0;
  int sequence = 0;
};

TEST(MpscQueue, SingleProducerDrainsInFifoOrder) {
  MpscQueue<TestNode> queue;
  EXPECT_TRUE(queue.empty());
  for (int i = 0; i < 5; ++i)
    queue.push(new TestNode{.producer = 0, .sequence = i});
  EXPECT_FALSE(queue.empty());
  int expected = 0;
  for (TestNode* node = queue.take_all(); node != nullptr;) {
    TestNode* next = node->next;
    EXPECT_EQ(node->sequence, expected++);
    delete node;
    node = next;
  }
  EXPECT_EQ(expected, 5);
  EXPECT_TRUE(queue.empty());
}

TEST(MpscQueue, FirstPushIntoEmptyQueueReportsIt) {
  MpscQueue<TestNode> queue;
  auto* first = new TestNode;
  auto* second = new TestNode;
  EXPECT_TRUE(queue.push(first));    // empty → non-empty: wake the consumer
  EXPECT_FALSE(queue.push(second));  // already non-empty
  for (TestNode* node = queue.take_all(); node != nullptr;) {
    TestNode* next = node->next;
    delete node;
    node = next;
  }
}

TEST(MpscQueue, ConcurrentProducersLoseNothingAndKeepPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  MpscQueue<TestNode> queue;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i)
        queue.push(new TestNode{.producer = p, .sequence = i});
    });

  // Drain concurrently with production (the real reactors do), then once
  // more after the joins to catch stragglers.
  int total = 0;
  std::vector<int> last_seen(kProducers, -1);
  const auto drain = [&] {
    for (TestNode* node = queue.take_all(); node != nullptr;) {
      TestNode* next = node->next;
      // FIFO of push linearization: each producer's own sequence must
      // arrive strictly increasing even when producers interleave.
      EXPECT_GT(node->sequence, last_seen[node->producer]);
      last_seen[node->producer] = node->sequence;
      ++total;
      delete node;
      node = next;
    }
  };
  while (total < kProducers * kPerProducer / 2) drain();
  for (std::thread& producer : producers) producer.join();
  drain();
  EXPECT_EQ(total, kProducers * kPerProducer);
  EXPECT_TRUE(queue.empty());
}

// ---------------------------------------------------------------------------
// Reactor sharding

TEST(Reactor, StatsAggregateEqualsPerReactorSum) {
  const std::vector<MachineTrace> fleet = small_fleet();
  ServerConfig config;
  config.reactors = 4;
  PredictionServer server(config, std::make_shared<PredictionService>());
  for (const MachineTrace& trace : fleet) server.add_trace(trace);
  server.start();
  EXPECT_EQ(server.reactor_count(), 4u);

  // Traffic with successes *and* errors, across several connections, so
  // every aggregated field is exercised.
  for (int c = 0; c < 6; ++c) {
    ClientConfig client_config;
    client_config.port = server.port();
    PredictionClient client(client_config);
    for (const MachineTrace& trace : fleet)
      (void)client.predict(item_for(trace, 9));
    EXPECT_THROW(
        (void)client.predict(WireRequestItem{
            .machine_key = "no-such-machine",
            .request = item_for(fleet.front(), 9).request}),
        RemoteError);
  }

  server.stop();  // joins: snapshots are exact from here on
  const ServerStats total = server.stats();
  const std::vector<ServerStats> shards = server.reactor_stats();
  ASSERT_EQ(shards.size(), 4u);
  const ServerStats summed = sum_stats(shards);

  EXPECT_EQ(total.accepted, summed.accepted);
  EXPECT_EQ(total.dropped, summed.dropped);
  EXPECT_EQ(total.active, summed.active);
  EXPECT_EQ(total.frames, summed.frames);
  EXPECT_EQ(total.requests, summed.requests);
  EXPECT_EQ(total.predictions, summed.predictions);
  EXPECT_EQ(total.responses, summed.responses);
  EXPECT_EQ(total.errors, summed.errors);
  EXPECT_EQ(total.trace_loads, summed.trace_loads);
  EXPECT_EQ(total.loaded_traces, summed.loaded_traces);
  EXPECT_EQ(total.rx_bytes, summed.rx_bytes);
  EXPECT_EQ(total.tx_bytes, summed.tx_bytes);

  // And the totals are the traffic we actually sent: 6 connections × 3
  // requests (2 served + 1 rejected).
  EXPECT_EQ(total.accepted, 6u);
  EXPECT_EQ(total.requests, 6u * 3u);
  EXPECT_EQ(total.responses, 6u * 2u);
  EXPECT_EQ(total.predictions, 6u * 2u);
  EXPECT_EQ(total.errors, 6u);
}

TEST(Reactor, HandoffPlacesConnectionsRoundRobinWithStrictOwnership) {
  const std::vector<MachineTrace> fleet = small_fleet();
  ServerConfig config;
  config.reactors = 4;
  config.force_accept_handoff = true;
  PredictionServer server(config, std::make_shared<PredictionService>());
  for (const MachineTrace& trace : fleet) server.add_trace(trace);
  server.start();
  EXPECT_TRUE(server.accept_handoff());

  // Eight sequential connections, two requests each, all held open so no fd
  // is reused: round-robin must deal exactly two connections per reactor.
  std::vector<std::unique_ptr<PredictionClient>> clients;
  for (int c = 0; c < 8; ++c) {
    ClientConfig client_config;
    client_config.port = server.port();
    clients.push_back(std::make_unique<PredictionClient>(client_config));
    (void)clients.back()->predict(item_for(fleet[0], 9));
    (void)clients.back()->predict(item_for(fleet[1], 14));
  }
  clients.clear();
  server.stop();

  const std::vector<ServerStats> shards = server.reactor_stats();
  ASSERT_EQ(shards.size(), 4u);
  // Only reactor 0 listens in hand-off mode.
  EXPECT_EQ(shards[0].accepted, 8u);
  for (std::size_t i = 1; i < shards.size(); ++i)
    EXPECT_EQ(shards[i].accepted, 0u) << "reactor " << i;
  // Strict ownership: each reactor serviced exactly its two connections'
  // frames — 2 connections × 2 requests — and nothing else. Any cross-
  // reactor servicing would skew these counters.
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i].frames, 4u) << "reactor " << i;
    EXPECT_EQ(shards[i].requests, 4u) << "reactor " << i;
    EXPECT_EQ(shards[i].responses, 4u) << "reactor " << i;
    EXPECT_EQ(shards[i].errors, 0u) << "reactor " << i;
  }
}

TEST(Reactor, ReusePortShardsServeEveryConnection) {
  const std::vector<MachineTrace> fleet = small_fleet();
  ServerConfig config;
  config.reactors = 2;
  PredictionServer server(config, std::make_shared<PredictionService>());
  for (const MachineTrace& trace : fleet) server.add_trace(trace);
  server.start();
  // Kernel connection placement is not deterministic, so assert totals and
  // correctness, not the per-reactor split.
  EXPECT_FALSE(server.accept_handoff());

  const AvailabilityPredictor reference;
  const WireRequestItem item = item_for(fleet[0], 9);
  const Prediction expected = reference.predict(fleet[0], item.request);
  for (int c = 0; c < 10; ++c) {
    ClientConfig client_config;
    client_config.port = server.port();
    PredictionClient client(client_config);
    const Prediction served = client.predict(item);
    EXPECT_TRUE(same_bits(served.temporal_reliability,
                          expected.temporal_reliability))
        << "connection " << c;
  }

  server.stop();
  const ServerStats total = server.stats();
  EXPECT_EQ(total.accepted, 10u);
  EXPECT_EQ(total.requests, 10u);
  EXPECT_EQ(total.responses, 10u);
  EXPECT_EQ(total, sum_stats(server.reactor_stats()));
}

TEST(Reactor, PipelinedRequestsAnswerInRequestOrder) {
  const std::vector<MachineTrace> fleet = small_fleet();
  ServerConfig config;
  config.reactors = 2;
  PredictionServer server(config, std::make_shared<PredictionService>());
  for (const MachineTrace& trace : fleet) server.add_trace(trace);
  server.start();

  // Raw blocking socket: write three request frames back to back without
  // reading, then collect three responses. The async dispatch path must
  // answer them strictly in request order (busy flag + pending queue).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                      sizeof(address)),
            0);

  // Distinguishable batches: sizes 1, 2, 3.
  std::vector<std::vector<WireRequestItem>> batches;
  batches.push_back({item_for(fleet[0], 9)});
  batches.push_back({item_for(fleet[1], 9), item_for(fleet[0], 14)});
  batches.push_back(
      {item_for(fleet[1], 14), item_for(fleet[0], 11), item_for(fleet[1], 11)});
  std::vector<std::uint8_t> wire;
  for (const std::vector<WireRequestItem>& batch : batches) {
    const std::vector<std::uint8_t> frame =
        encode_frame(FrameType::kRequest, encode_request(batch));
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));

  const AvailabilityPredictor reference;
  FrameDecoder decoder;
  std::size_t answered = 0;
  std::uint8_t buffer[4096];
  while (answered < batches.size()) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    ASSERT_GT(n, 0) << "server closed early";
    decoder.feed({buffer, static_cast<std::size_t>(n)});
    while (std::optional<Frame> frame = decoder.next()) {
      ASSERT_EQ(frame->type, FrameType::kResponse);
      const std::vector<Prediction> served = decode_response(frame->payload);
      // Response k must carry batch k's size and batch k's bits.
      ASSERT_EQ(served.size(), batches[answered].size())
          << "response " << answered << " out of order";
      for (std::size_t i = 0; i < served.size(); ++i) {
        const WireRequestItem& item = batches[answered][i];
        const MachineTrace& trace = item.machine_key == fleet[0].machine_id()
                                        ? fleet[0]
                                        : fleet[1];
        const Prediction expected = reference.predict(trace, item.request);
        EXPECT_TRUE(same_bits(served[i].temporal_reliability,
                              expected.temporal_reliability))
            << "response " << answered << " item " << i;
      }
      ++answered;
    }
  }
  ::close(fd);
  server.stop();
  EXPECT_EQ(server.stats().requests, batches.size());
  EXPECT_EQ(server.stats().responses, batches.size());
}

TEST(Reactor, SingleReactorIsTheDefaultAndRefusesZero) {
  PredictionServer server(ServerConfig{},
                          std::make_shared<PredictionService>());
  EXPECT_EQ(server.reactor_count(), 1u);
  ServerConfig zero;
  zero.reactors = 0;
  EXPECT_THROW(PredictionServer(zero, std::make_shared<PredictionService>()),
               PreconditionError);
}

}  // namespace
}  // namespace fgcs::net
