// Differential gate: the 128 golden-fixture rows (tests/golden/golden_tr.csv)
// served through a loopback PredictionServer must be *bit-identical* — exact
// double equality, no tolerance — to the in-process prediction stack, on a
// cold cache and again warm. This pins the whole network path (encode →
// frame → epoll server → PredictionService fan-out → encode → client decode)
// to the same numbers the golden suite already pins for the in-process path;
// the CSV's own values are cross-checked at the fixture's 1e-12 tolerance.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/prediction_service.hpp"
#include "core/predictor.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/error.hpp"
#include "workload/trace_generator.hpp"

#ifndef FGCS_GOLDEN_CSV
#error "build must define FGCS_GOLDEN_CSV (path to tests/golden/golden_tr.csv)"
#endif

namespace fgcs::net {
namespace {

struct GoldenRow {
  std::string machine;
  std::int64_t target_day = 0;
  SimTime window_start = 0;
  SimTime window_length = 0;
  double tr = 0.0;
};

std::vector<GoldenRow> load_fixture() {
  std::ifstream in(FGCS_GOLDEN_CSV);
  if (!in) throw DataError("cannot open fixture " FGCS_GOLDEN_CSV);
  std::vector<GoldenRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream fields(line);
    GoldenRow row;
    std::string cell;
    std::getline(fields, row.machine, ',');
    std::getline(fields, cell, ',');
    row.target_day = std::stoll(cell);
    std::getline(fields, cell, ',');
    row.window_start = std::stoll(cell);
    std::getline(fields, cell, ',');
    row.window_length = std::stoll(cell);
    std::getline(fields, cell, ',');
    row.tr = std::strtod(cell.c_str(), nullptr);
    rows.push_back(std::move(row));
  }
  return rows;
}

/// The same pinned fleet fgcs_golden computes its fixture from.
std::vector<MachineTrace> golden_fleet() {
  WorkloadParams params;
  params.sampling_period = 60;
  return generate_fleet(params, /*seed=*/20060619, /*count=*/4, /*days=*/30,
                        "golden");
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Parameterized over the server's reactor count: the acceptance gate is
/// that the golden rows serve bit-identically through the original
/// single-reactor path (1) *and* the sharded multi-reactor path (4).
class NetDifferentialTest : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override {
    rows_ = load_fixture();
    ASSERT_EQ(rows_.size(), 128u) << "golden grid changed; update this test";
    fleet_ = golden_fleet();
    for (const MachineTrace& trace : fleet_)
      by_id_.emplace(trace.machine_id(), &trace);

    ServerConfig server_config;
    server_config.reactors = GetParam();
    server_ = std::make_unique<PredictionServer>(
        server_config, std::make_shared<PredictionService>());
    for (const MachineTrace& trace : fleet_) server_->add_trace(trace);
    server_->start();

    ClientConfig config;
    config.port = server_->port();
    client_ = std::make_unique<PredictionClient>(config);
  }

  void TearDown() override {
    client_.reset();
    if (server_) server_->stop();
  }

  WireRequestItem wire_item(const GoldenRow& row) const {
    return WireRequestItem{
        .machine_key = row.machine,
        .request = {.target_day = row.target_day,
                    .window = {.start_of_day = row.window_start,
                               .length = row.window_length},
                    .initial_state = std::nullopt}};
  }

  std::vector<GoldenRow> rows_;
  std::vector<MachineTrace> fleet_;
  std::map<std::string, const MachineTrace*> by_id_;
  std::unique_ptr<PredictionServer> server_;
  std::unique_ptr<PredictionClient> client_;
};

TEST_P(NetDifferentialTest, AllGoldenRowsServeBitIdenticalColdAndWarm) {
  // In-process reference: the uncached predictor, computed once per row.
  const AvailabilityPredictor reference;
  std::vector<Prediction> expected;
  std::vector<WireRequestItem> items;
  for (const GoldenRow& row : rows_) {
    items.push_back(wire_item(row));
    expected.push_back(
        reference.predict(*by_id_.at(row.machine), items.back().request));
  }

  for (const char* pass : {"cold", "warm"}) {
    SCOPED_TRACE(pass);
    const std::vector<Prediction> served = client_->predict_batch(items);
    ASSERT_EQ(served.size(), rows_.size());
    std::size_t exact = 0;
    for (std::size_t i = 0; i < served.size(); ++i) {
      // The gate: exact equality of the served bits with the in-process
      // bits. EXPECT_EQ on doubles would also pass for -0.0 vs 0.0; bit
      // comparison is the stricter (and intended) contract.
      EXPECT_TRUE(same_bits(served[i].temporal_reliability,
                            expected[i].temporal_reliability))
          << rows_[i].machine << " day " << rows_[i].target_day << " start "
          << rows_[i].window_start << " len " << rows_[i].window_length
          << ": served " << served[i].temporal_reliability << " != local "
          << expected[i].temporal_reliability;
      for (std::size_t k = 0; k < 3; ++k)
        EXPECT_TRUE(
            same_bits(served[i].p_absorb[k], expected[i].p_absorb[k]));
      EXPECT_EQ(served[i].initial_state, expected[i].initial_state);
      EXPECT_EQ(served[i].training_days_used, expected[i].training_days_used);
      EXPECT_EQ(served[i].steps, expected[i].steps);
      // The committed fixture agrees at its own (platform-drift) tolerance.
      EXPECT_LE(std::fabs(served[i].temporal_reliability - rows_[i].tr),
                1e-12);
      exact += same_bits(served[i].temporal_reliability,
                         expected[i].temporal_reliability);
    }
    EXPECT_EQ(exact, rows_.size());
  }
}

TEST_P(NetDifferentialTest, SingleRequestFormMatchesBatchForm) {
  // Every 16th row through the scalar predict(): same wire, same bits.
  const AvailabilityPredictor reference;
  for (std::size_t i = 0; i < rows_.size(); i += 16) {
    const WireRequestItem item = wire_item(rows_[i]);
    const Prediction served = client_->predict(item);
    const Prediction expected =
        reference.predict(*by_id_.at(rows_[i].machine), item.request);
    EXPECT_TRUE(same_bits(served.temporal_reliability,
                          expected.temporal_reliability))
        << "row " << i;
  }
}

TEST_P(NetDifferentialTest, SharedServiceCacheServesSameBitsToWire) {
  // A second client sharing the server proves the memoized path (cache hits
  // populated by the first test's traffic pattern within this fixture) is
  // indistinguishable on the wire from the cold path.
  ClientConfig config;
  config.port = server_->port();
  PredictionClient second(config);
  const WireRequestItem item = wire_item(rows_.front());
  const Prediction first_answer = client_->predict(item);
  const Prediction second_answer = second.predict(item);
  EXPECT_TRUE(same_bits(first_answer.temporal_reliability,
                        second_answer.temporal_reliability));
}

TEST_P(NetDifferentialTest, UnknownMachineKeyFailsFastWithoutRetries) {
  // Trace loading is off by default, so an unknown key is a deterministic
  // rejection: the server answers retryable=0 and the client must surface
  // RemoteError from the single attempt instead of burning its retry budget.
  WireRequestItem item = wire_item(rows_.front());
  item.machine_key = "no-such-machine";
  EXPECT_THROW(client_->predict(item), RemoteError);
  EXPECT_EQ(client_->stats().attempts, 1u);
  EXPECT_EQ(client_->stats().retries, 0u);
  EXPECT_EQ(client_->stats().server_errors, 1u);
}

INSTANTIATE_TEST_SUITE_P(Reactors, NetDifferentialTest,
                         ::testing::Values(1u, 4u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return std::to_string(info.param) + "reactor";
                         });

TEST(NetTraceLoading, RootSandboxedLoadsServeBitIdenticalAndStayBounded) {
  // A server with trace_root set loads path-named traces from under the
  // root only, serves them bit-identically to in-process prediction, and
  // LRU-evicts the loaded cache down to max_loaded_traces between requests.
  namespace fs = std::filesystem;
  const fs::path root = fs::current_path() / "net-trace-root-test";
  fs::create_directories(root);
  WorkloadParams params;
  params.sampling_period = 60;
  const std::vector<MachineTrace> fleet =
      generate_fleet(params, /*seed=*/7171, /*count=*/2, /*days=*/10, "root");
  std::vector<std::string> names;
  for (const MachineTrace& trace : fleet) {
    names.push_back(trace.machine_id() + ".fgcs");
    trace.save_file((root / names.back()).string());
  }

  ServerConfig config;
  config.trace_root = root.string();
  config.max_loaded_traces = 1;  // force eviction on every alternation
  PredictionServer server(config, std::make_shared<PredictionService>());
  server.start();
  ClientConfig client_config;
  client_config.port = server.port();
  PredictionClient client(client_config);

  const AvailabilityPredictor reference;
  const PredictionRequest request{
      .target_day = fleet.front().day_count(),
      .window = {.start_of_day = 9 * kSecondsPerHour,
                 .length = 2 * kSecondsPerHour}};
  for (int round = 0; round < 4; ++round) {
    const std::size_t which = static_cast<std::size_t>(round % 2);
    const Prediction served = client.predict(
        WireRequestItem{.machine_key = names[which], .request = request});
    const Prediction expected = reference.predict(fleet[which], request);
    EXPECT_TRUE(same_bits(served.temporal_reliability,
                          expected.temporal_reliability))
        << "round " << round;
  }

  // Escapes of the root — absolute paths outside it or ".." traversal —
  // are rejected as non-retryable errors, not served.
  for (const std::string& escape :
       {std::string("/etc/hostname"), std::string("../escape.fgcs")}) {
    EXPECT_THROW(client.predict(WireRequestItem{.machine_key = escape,
                                                .request = request}),
                 RemoteError)
        << escape;
  }

  server.stop();
  EXPECT_GE(server.stats().trace_loads, 4u);  // alternation reloaded traces
  EXPECT_LE(server.stats().loaded_traces, 1u + 1u);  // bounded (cap + batch)
}

}  // namespace
}  // namespace fgcs::net
