// PredictionClient failure handling against a scripted fake server: connect
// refusal, request timeouts, error frames, malformed responses — each must
// surface as a retried attempt and, after max_attempts, one DataError that
// names the last failure. Backoff pacing uses the scheduler helper with
// SchedulerConfig milliseconds (verified by wall clock with jitter off).
#include "net/client.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "net/wire.hpp"
#include "util/error.hpp"

namespace fgcs::net {
namespace {

/// A loopback listener running one scripted action per accepted connection.
/// Action k runs for connection k (the last action repeats for overflow).
class FakeServer {
 public:
  /// The action receives the connected (blocking) fd and must not close it.
  using Action = std::function<void(int fd)>;

  explicit FakeServer(std::vector<Action> actions)
      : actions_(std::move(actions)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
                     sizeof(address)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 8), 0);
    socklen_t length = sizeof(address);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &length);
    port_ = ntohs(address.sin_port);
    thread_ = std::thread([this] { serve(); });
  }

  ~FakeServer() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    thread_.join();
  }

  std::uint16_t port() const { return port_; }
  int connections() const { return connections_; }

 private:
  void serve() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;  // listener closed: test over
      const std::size_t index = std::min<std::size_t>(
          static_cast<std::size_t>(connections_), actions_.size() - 1);
      ++connections_;
      actions_[index](fd);
      ::close(fd);
    }
  }

  std::vector<Action> actions_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  int connections_ = 0;
};

WireRequestItem any_item() {
  return WireRequestItem{
      .machine_key = "m0",
      .request = {.target_day = 8,
                  .window = {.start_of_day = 9 * 3600, .length = 3600}}};
}

/// Reads one full frame off a blocking fd.
Frame read_frame_blocking(int fd) {
  FrameDecoder decoder;
  std::uint8_t buffer[4096];
  for (;;) {
    if (std::optional<Frame> frame = decoder.next()) return *frame;
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) throw DataError("fake server: peer went away");
    decoder.feed({buffer, static_cast<std::size_t>(n)});
  }
}

void send_bytes(int fd, const std::vector<std::uint8_t>& bytes) {
  EXPECT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
}

ClientConfig quick_config(std::uint16_t port, int attempts) {
  ClientConfig config;
  config.port = port;
  config.max_attempts = attempts;
  config.connect_timeout = 2.0;
  config.request_timeout = 2.0;
  config.backoff.retry_delay = 1;       // ms — fast tests
  config.backoff.backoff_factor = 1.0;  // exact, jitter-free delays
  return config;
}

TEST(NetClient, RefusedConnectionFailsAfterMaxAttempts) {
  // Grab a port that refuses connections: bind, learn the number, close.
  std::uint16_t dead_port = 0;
  {
    FakeServer probe({[](int) {}});
    dead_port = probe.port();
  }
  PredictionClient client(quick_config(dead_port, 3));
  const WireRequestItem item = any_item();
  EXPECT_THROW(client.predict_batch({&item, 1}), DataError);
  EXPECT_EQ(client.stats().batches, 1u);
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_FALSE(client.connected());
}

TEST(NetClient, RetryableServerErrorFrameIsRetriedThenSucceeds) {
  const auto answer_error = [](int fd) {
    read_frame_blocking(fd);
    send_bytes(fd,
               encode_frame(FrameType::kError,
                            encode_error("transient: try again", true)));
  };
  const auto answer_ok = [](int fd) {
    const Frame request = read_frame_blocking(fd);
    const std::size_t count = decode_request(request.payload).size();
    std::vector<Prediction> results(count);
    results[0].temporal_reliability = 0.625;
    send_bytes(fd, encode_frame(FrameType::kResponse,
                                encode_response(results)));
  };
  FakeServer server({answer_error, answer_error, answer_ok});
  PredictionClient client(quick_config(server.port(), 5));

  const Prediction result = client.predict(any_item());
  EXPECT_EQ(result.temporal_reliability, 0.625);
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(client.stats().server_errors, 2u);
  EXPECT_EQ(client.stats().reconnects, 3u);  // error frames close the socket
}

TEST(NetClient, NonRetryableServerErrorFailsFastWithoutBackoff) {
  // retryable=0 says "these bytes will be rejected identically every time":
  // one attempt, RemoteError, no retry budget or backoff spent.
  const auto reject = [](int fd) {
    read_frame_blocking(fd);
    send_bytes(fd, encode_frame(FrameType::kError,
                                encode_error("unknown machine key", false)));
  };
  FakeServer server({reject});
  ClientConfig config = quick_config(server.port(), 5);
  config.backoff.retry_delay = 60'000;  // a retry would blow the clock below
  PredictionClient client(config);

  const auto start = std::chrono::steady_clock::now();
  const WireRequestItem item = any_item();
  try {
    client.predict_batch({&item, 1});
    FAIL() << "non-retryable rejection was swallowed";
  } catch (const RemoteError& error) {
    EXPECT_NE(std::string(error.what()).find("unknown machine key"),
              std::string::npos)
        << error.what();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(client.stats().attempts, 1u);
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_EQ(client.stats().server_errors, 1u);
  EXPECT_LT(elapsed, 5.0);  // no 60 s backoff was paid
  EXPECT_FALSE(client.connected());
}

TEST(NetClient, SilentServerTriggersRequestTimeout) {
  const auto black_hole = [](int fd) {
    read_frame_blocking(fd);
    // Never answer; hold the connection until the client gives up.
    char sink;
    (void)!::read(fd, &sink, 1);
  };
  FakeServer server({black_hole});
  ClientConfig config = quick_config(server.port(), 2);
  config.request_timeout = 0.2;
  PredictionClient client(config);

  const auto start = std::chrono::steady_clock::now();
  const WireRequestItem item = any_item();
  EXPECT_THROW(client.predict_batch({&item, 1}), DataError);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(client.stats().attempts, 2u);
  EXPECT_GE(elapsed, 0.4);  // two full request timeouts were honoured
  EXPECT_LT(elapsed, 2.0);
}

TEST(NetClient, ResponseCountMismatchIsAProtocolErrorAndRetried) {
  const auto wrong_count = [](int fd) {
    read_frame_blocking(fd);
    send_bytes(fd, encode_frame(FrameType::kResponse,
                                encode_response(std::vector<Prediction>(3))));
  };
  FakeServer server({wrong_count, wrong_count});
  PredictionClient client(quick_config(server.port(), 2));
  const WireRequestItem item = any_item();  // batch of 1, response of 3
  try {
    client.predict_batch({&item, 1});
    FAIL() << "count mismatch accepted";
  } catch (const DataError& error) {
    EXPECT_NE(std::string(error.what()).find("3 predictions"),
              std::string::npos)
        << error.what();
  }
  EXPECT_EQ(client.stats().attempts, 2u);
}

TEST(NetClient, GarbageFromServerDesyncsAndRetries) {
  const auto garbage = [](int fd) {
    read_frame_blocking(fd);
    send_bytes(fd, std::vector<std::uint8_t>(64, 0x5a));
  };
  FakeServer server({garbage, garbage, garbage});
  PredictionClient client(quick_config(server.port(), 3));
  const WireRequestItem item = any_item();
  EXPECT_THROW(client.predict_batch({&item, 1}), DataError);
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(server.connections(), 3);
}

TEST(NetClient, BackoffPacesRetriesInMilliseconds) {
  // backoff_factor 1.0 short-circuits jitter: every pause is exactly
  // retry_delay, read as milliseconds. Three attempts → two 60 ms pauses.
  std::uint16_t dead_port = 0;
  {
    FakeServer probe({[](int) {}});
    dead_port = probe.port();
  }
  ClientConfig config = quick_config(dead_port, 3);
  config.backoff.retry_delay = 60;
  PredictionClient client(config);

  const auto start = std::chrono::steady_clock::now();
  const WireRequestItem item = any_item();
  EXPECT_THROW(client.predict_batch({&item, 1}), DataError);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 0.12);  // ≥ 2 × 60 ms — delays are ms, not seconds
  EXPECT_LT(elapsed, 5.0);   // …and certainly not SimTime seconds
}

TEST(NetClient, LastFailureIsNamedInTheFinalError) {
  std::uint16_t dead_port = 0;
  {
    FakeServer probe({[](int) {}});
    dead_port = probe.port();
  }
  PredictionClient client(quick_config(dead_port, 2));
  const WireRequestItem item = any_item();
  try {
    client.predict_batch({&item, 1});
    FAIL() << "refused connection accepted";
  } catch (const DataError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("after 2 attempts"), std::string::npos) << what;
    EXPECT_NE(what.find("last:"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace fgcs::net
