// Wire protocol unit tests: lossless payload round-trips (doubles travel as
// IEEE-754 bit patterns — exact, not approximate), header framing, and
// FrameDecoder stream reassembly under arbitrary chunking.
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace fgcs::net {
namespace {

WireRequestItem item(std::string key, std::int64_t day, SimTime start,
                     SimTime length,
                     std::optional<State> init = std::nullopt) {
  return WireRequestItem{
      .machine_key = std::move(key),
      .request = {.target_day = day,
                  .window = {.start_of_day = start, .length = length},
                  .initial_state = init}};
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

TEST(WireRequest, RoundTripsEveryField) {
  const std::vector<WireRequestItem> items{
      item("lab-42", 30, 9 * 3600, 2 * 3600),
      item("m", 0, 0, 1, State::kS1),
      item("a long key with spaces / and: punctuation", -5, 86399, 12 * 3600,
           State::kS2),
  };
  const std::vector<WireRequestItem> back =
      decode_request(encode_request(items));
  ASSERT_EQ(back.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(back[i].machine_key, items[i].machine_key);
    EXPECT_EQ(back[i].request.target_day, items[i].request.target_day);
    EXPECT_EQ(back[i].request.window.start_of_day,
              items[i].request.window.start_of_day);
    EXPECT_EQ(back[i].request.window.length, items[i].request.window.length);
    EXPECT_EQ(back[i].request.initial_state, items[i].request.initial_state);
  }
}

TEST(WireRequest, EmptyBatchRoundTrips) {
  const std::vector<WireRequestItem> none;
  EXPECT_TRUE(decode_request(encode_request(none)).empty());
}

TEST(WireResponse, DoublesAreBitExact) {
  // Values chosen to break text round-trips that bit patterns survive:
  // negative zero, subnormals, an irrational at full precision, infinity.
  Prediction a;
  a.temporal_reliability = 0.1 + 0.2;  // the classic 0.30000000000000004
  a.initial_state = State::kS2;
  a.p_absorb = {std::nextafter(0.0, 1.0), -0.0, 1.0 / 3.0};
  a.training_days_used = 15;
  a.steps = 720;
  a.estimate_seconds = 1e-9;
  a.solve_seconds = std::numeric_limits<double>::min();
  Prediction b;
  b.temporal_reliability = std::nextafter(1.0, 0.0);
  b.p_absorb = {0.25, 0.5, std::numeric_limits<double>::epsilon()};

  const std::vector<Prediction> sent{a, b};
  const std::vector<Prediction> back = decode_response(encode_response(sent));
  ASSERT_EQ(back.size(), 2u);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_TRUE(same_bits(back[i].temporal_reliability,
                          sent[i].temporal_reliability));
    EXPECT_EQ(back[i].initial_state, sent[i].initial_state);
    for (int k = 0; k < 3; ++k)
      EXPECT_TRUE(same_bits(back[i].p_absorb[static_cast<std::size_t>(k)],
                            sent[i].p_absorb[static_cast<std::size_t>(k)]));
    EXPECT_EQ(back[i].training_days_used, sent[i].training_days_used);
    EXPECT_EQ(back[i].steps, sent[i].steps);
    EXPECT_TRUE(same_bits(back[i].estimate_seconds, sent[i].estimate_seconds));
    EXPECT_TRUE(same_bits(back[i].solve_seconds, sent[i].solve_seconds));
  }
}

TEST(WireError, MessageAndRetryableFlagRoundTrip) {
  const WireError transient = decode_error(encode_error("boom: détails", true));
  EXPECT_EQ(transient.message, "boom: détails");
  EXPECT_TRUE(transient.retryable);
  const WireError fatal = decode_error(encode_error("", false));
  EXPECT_EQ(fatal.message, "");
  EXPECT_FALSE(fatal.retryable);
}

TEST(WireError, InvalidRetryableByteIsRejected) {
  std::vector<std::uint8_t> payload = encode_error("x", true);
  payload.front() = 2;  // only 0 and 1 are valid
  EXPECT_THROW(decode_error(payload), DataError);
}

TEST(WireFrame, HeaderLayoutMatchesSpec) {
  const std::vector<std::uint8_t> payload{1, 2, 3};
  const std::vector<std::uint8_t> frame =
      encode_frame(FrameType::kError, payload);
  ASSERT_EQ(frame.size(), kHeaderBytes + payload.size());
  std::uint32_t magic = 0;
  std::memcpy(&magic, frame.data(), 4);
  EXPECT_EQ(magic, kWireMagic);
  std::uint16_t version = 0;
  std::memcpy(&version, frame.data() + 4, 2);
  EXPECT_EQ(version, kWireVersion);
  std::uint16_t type = 0;
  std::memcpy(&type, frame.data() + 6, 2);
  EXPECT_EQ(type, static_cast<std::uint16_t>(FrameType::kError));
  std::uint32_t length = 0;
  std::memcpy(&length, frame.data() + 8, 4);
  EXPECT_EQ(length, payload.size());
  std::uint32_t checksum = 0;
  std::memcpy(&checksum, frame.data() + 12, 4);
  EXPECT_EQ(checksum, wire_checksum(payload));
}

TEST(WireChecksum, IsFnv1aStable) {
  // Pinned values so an accidental checksum change breaks loudly (it would
  // desync every deployed peer).
  EXPECT_EQ(wire_checksum({}), 0x811c9dc5u);  // FNV-1a offset basis
  const std::vector<std::uint8_t> abc{'a', 'b', 'c'};
  EXPECT_EQ(wire_checksum(abc), 0x1a47e90bu);
}

TEST(FrameDecoder, ReassemblesByteAtATime) {
  const std::vector<WireRequestItem> items{item("k", 7, 3600, 1800)};
  const std::vector<std::uint8_t> bytes =
      encode_frame(FrameType::kRequest, encode_request(items));

  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed({&bytes[i], 1});
    EXPECT_FALSE(decoder.next().has_value()) << "frame complete too early";
  }
  decoder.feed({&bytes[bytes.size() - 1], 1});
  const std::optional<Frame> frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kRequest);
  EXPECT_EQ(decode_request(frame->payload).at(0).machine_key, "k");
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoder, SplitsBackToBackFrames) {
  std::vector<std::uint8_t> stream =
      encode_frame(FrameType::kError, encode_error("first", true));
  const std::vector<std::uint8_t> second =
      encode_frame(FrameType::kError, encode_error("second", true));
  stream.insert(stream.end(), second.begin(), second.end());

  FrameDecoder decoder;
  decoder.feed(stream);
  const std::optional<Frame> one = decoder.next();
  const std::optional<Frame> two = decoder.next();
  ASSERT_TRUE(one && two);
  EXPECT_EQ(decode_error(one->payload).message, "first");
  EXPECT_EQ(decode_error(two->payload).message, "second");
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(FrameDecoder, RejectsBadMagicBeforePayloadArrives) {
  std::vector<std::uint8_t> bytes =
      encode_frame(FrameType::kError, encode_error("x", true));
  bytes[0] ^= 0xff;
  FrameDecoder decoder;
  // Header alone (16 bytes) must already trip the desync — fail fast, don't
  // wait for a payload that may never come.
  decoder.feed({bytes.data(), kHeaderBytes});
  EXPECT_THROW(decoder.next(), DataError);
  // Poisoned: every further use throws.
  EXPECT_THROW(decoder.next(), DataError);
  EXPECT_THROW(decoder.feed({bytes.data(), 1}), DataError);
}

TEST(FrameDecoder, RejectsChecksumMismatch) {
  std::vector<std::uint8_t> bytes =
      encode_frame(FrameType::kRequest,
                   encode_request(std::vector<WireRequestItem>{
                       item("m", 3, 0, 600)}));
  bytes.back() ^= 0x01;  // corrupt payload, header checksum now wrong
  FrameDecoder decoder;
  decoder.feed(bytes);
  EXPECT_THROW(decoder.next(), DataError);
}

TEST(WireFrame, OversizedPayloadIsPreconditionError) {
  // encode side: refuse to build an unsendable frame.
  std::vector<std::uint8_t> big(kMaxPayloadBytes + 1);
  EXPECT_THROW(encode_frame(FrameType::kError, big), PreconditionError);
}

TEST(WireRequest, OversizedKeyIsRejectedAtEncode) {
  const std::vector<WireRequestItem> items{
      item(std::string(kMaxKeyBytes + 1, 'k'), 1, 0, 60)};
  EXPECT_THROW(encode_request(items), PreconditionError);
}

}  // namespace
}  // namespace fgcs::net
