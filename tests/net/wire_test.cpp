// Wire protocol unit tests: lossless payload round-trips (doubles travel as
// IEEE-754 bit patterns — exact, not approximate), header framing, and
// FrameDecoder stream reassembly under arbitrary chunking.
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace fgcs::net {
namespace {

WireRequestItem item(std::string key, std::int64_t day, SimTime start,
                     SimTime length,
                     std::optional<State> init = std::nullopt) {
  return WireRequestItem{
      .machine_key = std::move(key),
      .request = {.target_day = day,
                  .window = {.start_of_day = start, .length = length},
                  .initial_state = init}};
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

TEST(WireRequest, RoundTripsEveryField) {
  const std::vector<WireRequestItem> items{
      item("lab-42", 30, 9 * 3600, 2 * 3600),
      item("m", 0, 0, 1, State::kS1),
      item("a long key with spaces / and: punctuation", -5, 86399, 12 * 3600,
           State::kS2),
  };
  const std::vector<WireRequestItem> back =
      decode_request(encode_request(items));
  ASSERT_EQ(back.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(back[i].machine_key, items[i].machine_key);
    EXPECT_EQ(back[i].request.target_day, items[i].request.target_day);
    EXPECT_EQ(back[i].request.window.start_of_day,
              items[i].request.window.start_of_day);
    EXPECT_EQ(back[i].request.window.length, items[i].request.window.length);
    EXPECT_EQ(back[i].request.initial_state, items[i].request.initial_state);
  }
}

TEST(WireRequest, EmptyBatchRoundTrips) {
  const std::vector<WireRequestItem> none;
  EXPECT_TRUE(decode_request(encode_request(none)).empty());
}

TEST(WireResponse, DoublesAreBitExact) {
  // Values chosen to break text round-trips that bit patterns survive:
  // negative zero, subnormals, an irrational at full precision, infinity.
  Prediction a;
  a.temporal_reliability = 0.1 + 0.2;  // the classic 0.30000000000000004
  a.initial_state = State::kS2;
  a.p_absorb = {std::nextafter(0.0, 1.0), -0.0, 1.0 / 3.0};
  a.training_days_used = 15;
  a.steps = 720;
  a.estimate_seconds = 1e-9;
  a.solve_seconds = std::numeric_limits<double>::min();
  Prediction b;
  b.temporal_reliability = std::nextafter(1.0, 0.0);
  b.p_absorb = {0.25, 0.5, std::numeric_limits<double>::epsilon()};

  const std::vector<Prediction> sent{a, b};
  const std::vector<Prediction> back = decode_response(encode_response(sent));
  ASSERT_EQ(back.size(), 2u);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_TRUE(same_bits(back[i].temporal_reliability,
                          sent[i].temporal_reliability));
    EXPECT_EQ(back[i].initial_state, sent[i].initial_state);
    for (int k = 0; k < 3; ++k)
      EXPECT_TRUE(same_bits(back[i].p_absorb[static_cast<std::size_t>(k)],
                            sent[i].p_absorb[static_cast<std::size_t>(k)]));
    EXPECT_EQ(back[i].training_days_used, sent[i].training_days_used);
    EXPECT_EQ(back[i].steps, sent[i].steps);
    EXPECT_TRUE(same_bits(back[i].estimate_seconds, sent[i].estimate_seconds));
    EXPECT_TRUE(same_bits(back[i].solve_seconds, sent[i].solve_seconds));
  }
}

TEST(WireError, MessageAndRetryableFlagRoundTrip) {
  const WireError transient = decode_error(encode_error("boom: détails", true));
  EXPECT_EQ(transient.message, "boom: détails");
  EXPECT_TRUE(transient.retryable);
  const WireError fatal = decode_error(encode_error("", false));
  EXPECT_EQ(fatal.message, "");
  EXPECT_FALSE(fatal.retryable);
}

TEST(WireError, InvalidRetryableByteIsRejected) {
  std::vector<std::uint8_t> payload = encode_error("x", true);
  payload.front() = 2;  // only 0 and 1 are valid
  EXPECT_THROW(decode_error(payload), DataError);
}

TEST(WireFrame, HeaderLayoutMatchesSpec) {
  const std::vector<std::uint8_t> payload{1, 2, 3};
  const std::vector<std::uint8_t> frame =
      encode_frame(FrameType::kError, payload);
  ASSERT_EQ(frame.size(), kHeaderBytes + payload.size());
  std::uint32_t magic = 0;
  std::memcpy(&magic, frame.data(), 4);
  EXPECT_EQ(magic, kWireMagic);
  std::uint16_t version = 0;
  std::memcpy(&version, frame.data() + 4, 2);
  EXPECT_EQ(version, kWireVersion);
  std::uint16_t type = 0;
  std::memcpy(&type, frame.data() + 6, 2);
  EXPECT_EQ(type, static_cast<std::uint16_t>(FrameType::kError));
  std::uint32_t length = 0;
  std::memcpy(&length, frame.data() + 8, 4);
  EXPECT_EQ(length, payload.size());
  std::uint32_t checksum = 0;
  std::memcpy(&checksum, frame.data() + 12, 4);
  EXPECT_EQ(checksum, wire_checksum(payload));
}

TEST(WireChecksum, IsFnv1aStable) {
  // Pinned values so an accidental checksum change breaks loudly (it would
  // desync every deployed peer).
  EXPECT_EQ(wire_checksum({}), 0x811c9dc5u);  // FNV-1a offset basis
  const std::vector<std::uint8_t> abc{'a', 'b', 'c'};
  EXPECT_EQ(wire_checksum(abc), 0x1a47e90bu);
}

TEST(FrameDecoder, ReassemblesByteAtATime) {
  const std::vector<WireRequestItem> items{item("k", 7, 3600, 1800)};
  const std::vector<std::uint8_t> bytes =
      encode_frame(FrameType::kRequest, encode_request(items));

  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed({&bytes[i], 1});
    EXPECT_FALSE(decoder.next().has_value()) << "frame complete too early";
  }
  decoder.feed({&bytes[bytes.size() - 1], 1});
  const std::optional<Frame> frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kRequest);
  EXPECT_EQ(decode_request(frame->payload).at(0).machine_key, "k");
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoder, SplitsBackToBackFrames) {
  std::vector<std::uint8_t> stream =
      encode_frame(FrameType::kError, encode_error("first", true));
  const std::vector<std::uint8_t> second =
      encode_frame(FrameType::kError, encode_error("second", true));
  stream.insert(stream.end(), second.begin(), second.end());

  FrameDecoder decoder;
  decoder.feed(stream);
  const std::optional<Frame> one = decoder.next();
  const std::optional<Frame> two = decoder.next();
  ASSERT_TRUE(one && two);
  EXPECT_EQ(decode_error(one->payload).message, "first");
  EXPECT_EQ(decode_error(two->payload).message, "second");
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(FrameDecoder, RejectsBadMagicBeforePayloadArrives) {
  std::vector<std::uint8_t> bytes =
      encode_frame(FrameType::kError, encode_error("x", true));
  bytes[0] ^= 0xff;
  FrameDecoder decoder;
  // Header alone (16 bytes) must already trip the desync — fail fast, don't
  // wait for a payload that may never come.
  decoder.feed({bytes.data(), kHeaderBytes});
  EXPECT_THROW(decoder.next(), DataError);
  // Poisoned: every further use throws.
  EXPECT_THROW(decoder.next(), DataError);
  EXPECT_THROW(decoder.feed({bytes.data(), 1}), DataError);
}

TEST(FrameDecoder, RejectsChecksumMismatch) {
  std::vector<std::uint8_t> bytes =
      encode_frame(FrameType::kRequest,
                   encode_request(std::vector<WireRequestItem>{
                       item("m", 3, 0, 600)}));
  bytes.back() ^= 0x01;  // corrupt payload, header checksum now wrong
  FrameDecoder decoder;
  decoder.feed(bytes);
  EXPECT_THROW(decoder.next(), DataError);
}

TEST(WireFrame, OversizedPayloadIsPreconditionError) {
  // encode side: refuse to build an unsendable frame.
  std::vector<std::uint8_t> big(kMaxPayloadBytes + 1);
  EXPECT_THROW(encode_frame(FrameType::kError, big), PreconditionError);
}

TEST(WireRequest, OversizedKeyIsRejectedAtEncode) {
  const std::vector<WireRequestItem> items{
      item(std::string(kMaxKeyBytes + 1, 'k'), 1, 0, 60)};
  EXPECT_THROW(encode_request(items), PreconditionError);
}

// ---- streaming ingest frames (wire v2) ----

WireAppendRequest append_request() {
  WireAppendRequest request;
  request.machine_id = "lab-42/cpu0";
  request.epoch_day_of_week = 5;
  request.sampling_period = 60;
  request.total_mem_mb = 2048;
  request.first_sample_index = 0x1234'5678'9abcull;
  ResourceSample up;
  up.host_load_pct = 37;
  up.free_mem_mb = 911;
  up.set_up(true);
  ResourceSample down;
  down.host_load_pct = 0;
  down.free_mem_mb = 2048;
  down.set_up(false);
  ResourceSample edge;
  edge.host_load_pct = 100;
  edge.free_mem_mb = 0xffff;
  edge.set_up(true);
  request.samples = {up, down, edge};
  return request;
}

TEST(WireAppend, RoundTripsEveryField) {
  const WireAppendRequest request = append_request();
  const WireAppendRequest back = decode_append(encode_append(request));
  EXPECT_EQ(back.machine_id, request.machine_id);
  EXPECT_EQ(back.epoch_day_of_week, request.epoch_day_of_week);
  EXPECT_EQ(back.sampling_period, request.sampling_period);
  EXPECT_EQ(back.total_mem_mb, request.total_mem_mb);
  EXPECT_EQ(back.first_sample_index, request.first_sample_index);
  ASSERT_EQ(back.samples.size(), request.samples.size());
  for (std::size_t i = 0; i < back.samples.size(); ++i)
    EXPECT_TRUE(back.samples[i] == request.samples[i]) << "sample " << i;
}

TEST(WireAppend, FramesAsTypeFourUnderCurrentVersion) {
  const std::vector<std::uint8_t> frame =
      encode_frame(FrameType::kAppendSamples, encode_append(append_request()));
  EXPECT_EQ(frame[4], kWireVersion);
  EXPECT_EQ(frame[4], 3);  // appends exist since v2; current protocol is v3
  EXPECT_EQ(frame[6], 4);  // FrameType::kAppendSamples
  FrameDecoder decoder;
  decoder.feed(frame);
  const std::optional<Frame> out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, FrameType::kAppendSamples);
}

TEST(WireAppend, EncodeRejectsInvalidRequests) {
  WireAppendRequest bad = append_request();
  bad.samples.clear();
  EXPECT_THROW(encode_append(bad), PreconditionError);
  bad = append_request();
  bad.epoch_day_of_week = 7;
  EXPECT_THROW(encode_append(bad), PreconditionError);
  bad = append_request();
  bad.sampling_period = 7;  // does not divide 86 400
  EXPECT_THROW(encode_append(bad), PreconditionError);
  bad = append_request();
  bad.samples[0].host_load_pct = 101;
  EXPECT_THROW(encode_append(bad), PreconditionError);
  bad = append_request();
  bad.machine_id.assign(kMaxKeyBytes + 1, 'k');
  EXPECT_THROW(encode_append(bad), PreconditionError);
}

TEST(WireAppendAck, RoundTripsAsFixed48Bytes) {
  const WireAppendAck ack{.accepted = 1440,
                          .duplicates = 17,
                          .next_index = 0xdead'beef'0042ull,
                          .days_closed = 2,
                          .days_retired = 1,
                          .generation = 31};
  const std::vector<std::uint8_t> payload = encode_append_ack(ack);
  EXPECT_EQ(payload.size(), 48u);
  const WireAppendAck back = decode_append_ack(payload);
  EXPECT_EQ(back.accepted, ack.accepted);
  EXPECT_EQ(back.duplicates, ack.duplicates);
  EXPECT_EQ(back.next_index, ack.next_index);
  EXPECT_EQ(back.days_closed, ack.days_closed);
  EXPECT_EQ(back.days_retired, ack.days_retired);
  EXPECT_EQ(back.generation, ack.generation);
}

TEST(WireAppendAck, WrongSizePayloadIsRejected) {
  std::vector<std::uint8_t> payload = encode_append_ack(WireAppendAck{});
  payload.pop_back();
  EXPECT_THROW(decode_append_ack(payload), DataError);
  payload = encode_append_ack(WireAppendAck{});
  payload.push_back(0);
  EXPECT_THROW(decode_append_ack(payload), DataError);
}

}  // namespace
}  // namespace fgcs::net
