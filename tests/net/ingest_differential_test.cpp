// End-to-end streaming differential: the golden fleet STREAMED sample by
// sample over loopback kAppendSamples frames — rather than handed to the
// server preloaded — must serve every golden-fixture row bit-identically to
// the in-process stack (and within the fixture's own 1e-12 tolerance). Along
// the way the acks must account for every sample, and the service cache
// generation must bump exactly once per closed day, no more, no less.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/prediction_service.hpp"
#include "core/predictor.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/error.hpp"
#include "workload/trace_generator.hpp"

#ifndef FGCS_GOLDEN_CSV
#error "build must define FGCS_GOLDEN_CSV (path to tests/golden/golden_tr.csv)"
#endif

namespace fgcs::net {
namespace {

struct GoldenRow {
  std::string machine;
  std::int64_t target_day = 0;
  SimTime window_start = 0;
  SimTime window_length = 0;
  double tr = 0.0;
};

std::vector<GoldenRow> load_fixture() {
  std::ifstream in(FGCS_GOLDEN_CSV);
  if (!in) throw DataError("cannot open fixture " FGCS_GOLDEN_CSV);
  std::vector<GoldenRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream fields(line);
    GoldenRow row;
    std::string cell;
    std::getline(fields, row.machine, ',');
    std::getline(fields, cell, ',');
    row.target_day = std::stoll(cell);
    std::getline(fields, cell, ',');
    row.window_start = std::stoll(cell);
    std::getline(fields, cell, ',');
    row.window_length = std::stoll(cell);
    std::getline(fields, cell, ',');
    row.tr = std::strtod(cell.c_str(), nullptr);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<MachineTrace> golden_fleet() {
  WorkloadParams params;
  params.sampling_period = 60;
  return generate_fleet(params, /*seed=*/20060619, /*count=*/4, /*days=*/30,
                        "golden");
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

WireAppendRequest request_shell(const MachineTrace& trace) {
  WireAppendRequest request;
  request.machine_id = trace.machine_id();
  request.epoch_day_of_week =
      static_cast<std::uint8_t>(trace.calendar().epoch_day_of_week());
  request.sampling_period = trace.sampling_period();
  request.total_mem_mb = static_cast<std::uint32_t>(trace.total_mem_mb());
  return request;
}

/// Streams the whole trace in `batch`-sample frames, asserting after every
/// ack that the service generation equals the number of days closed so far —
/// i.e. one invalidation per day boundary and none for buffered samples.
void stream_and_check_generations(PredictionClient& client,
                                  const PredictionService& service,
                                  const MachineTrace& trace,
                                  std::size_t batch) {
  WireAppendRequest request = request_shell(trace);
  const std::size_t per_day = trace.samples_per_day();
  const std::uint64_t total =
      static_cast<std::uint64_t>(trace.day_count()) * per_day;
  std::uint64_t index = 0;
  std::uint64_t closed_total = 0;
  while (index < total) {
    const std::uint64_t count = std::min<std::uint64_t>(batch, total - index);
    request.first_sample_index = index;
    request.samples.clear();
    for (std::uint64_t i = index; i < index + count; ++i)
      request.samples.push_back(
          trace.at(static_cast<std::int64_t>(i / per_day), i % per_day));
    const WireAppendAck ack = client.append_samples(request);
    ASSERT_EQ(ack.accepted, count);
    ASSERT_EQ(ack.duplicates, 0u);
    ASSERT_EQ(ack.next_index, index + count);
    closed_total += ack.days_closed;
    // The acceptance clause: generation bumped exactly once per closed day.
    ASSERT_EQ(ack.generation, closed_total);
    ASSERT_EQ(service.history_generation(trace.machine_id()), closed_total);
    ASSERT_EQ(closed_total, (index + count) / per_day);
    index += count;
  }
  ASSERT_EQ(closed_total, static_cast<std::uint64_t>(trace.day_count()));
}

TEST(IngestDifferential, StreamedGoldenRowsServeBitIdentical) {
  const std::vector<GoldenRow> rows = load_fixture();
  ASSERT_EQ(rows.size(), 128u) << "golden grid changed; update this test";
  const std::vector<MachineTrace> fleet = golden_fleet();
  std::map<std::string, const MachineTrace*> by_id;
  for (const MachineTrace& trace : fleet)
    by_id.emplace(trace.machine_id(), &trace);

  const auto service = std::make_shared<PredictionService>();
  ServerConfig server_config;
  server_config.ingest = true;  // NO preloaded traces: everything arrives live
  PredictionServer server(server_config, service);
  server.start();
  ClientConfig client_config;
  client_config.port = server.port();
  PredictionClient client(client_config);

  // Deliberately awkward frame sizes: smaller than a day, exactly a day, and
  // day-straddling, varying per machine.
  const std::size_t per_day = fleet.front().samples_per_day();
  const std::size_t batches[] = {per_day / 3, per_day, per_day * 2 + 17,
                                 per_day - 1};
  for (std::size_t m = 0; m < fleet.size(); ++m) {
    SCOPED_TRACE(fleet[m].machine_id());
    stream_and_check_generations(client, *service, fleet[m], batches[m % 4]);
    if (HasFatalFailure()) return;
  }

  // Every golden row served from the streamed history: bit-identical to the
  // local predictor on the source traces, 1e-12 against the fixture.
  const AvailabilityPredictor reference;
  std::vector<WireRequestItem> items;
  std::vector<Prediction> expected;
  for (const GoldenRow& row : rows) {
    items.push_back(WireRequestItem{
        .machine_key = row.machine,
        .request = {.target_day = row.target_day,
                    .window = {.start_of_day = row.window_start,
                               .length = row.window_length}}});
    expected.push_back(
        reference.predict(*by_id.at(row.machine), items.back().request));
  }
  const std::vector<Prediction> served = client.predict_batch(items);
  ASSERT_EQ(served.size(), rows.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_TRUE(same_bits(served[i].temporal_reliability,
                          expected[i].temporal_reliability))
        << rows[i].machine << " day " << rows[i].target_day << ": served "
        << served[i].temporal_reliability << " != local "
        << expected[i].temporal_reliability;
    EXPECT_LE(std::fabs(served[i].temporal_reliability - rows[i].tr), 1e-12);
    EXPECT_EQ(served[i].initial_state, expected[i].initial_state);
    EXPECT_EQ(served[i].training_days_used, expected[i].training_days_used);
  }

  server.stop();
  const ServerStats stats = server.stats();
  const std::uint64_t want_samples =
      static_cast<std::uint64_t>(fleet.size()) * 30 * per_day;
  EXPECT_EQ(stats.append_samples, want_samples);
  EXPECT_EQ(stats.append_duplicates, 0u);
  EXPECT_EQ(stats.days_closed, fleet.size() * 30);
  EXPECT_EQ(stats.days_retired, 0u);
}

TEST(IngestDifferential, RetentionWindowServesTheSlicedHistory) {
  // A 10-day retention server fed 30 days must end up holding exactly
  // trace.slice(20, 30) — calendar alignment included — and serve
  // predictions on it bit-identically to the local stack on that slice.
  const MachineTrace trace = golden_fleet().front();
  const auto service = std::make_shared<PredictionService>();
  ServerConfig server_config;
  server_config.ingest = true;
  server_config.ingest_retention_days = 10;
  PredictionServer server(server_config, service);
  server.start();
  ClientConfig client_config;
  client_config.port = server.port();
  PredictionClient client(client_config);

  WireAppendRequest request = request_shell(trace);
  const std::size_t per_day = trace.samples_per_day();
  std::uint64_t retired = 0;
  for (std::int64_t d = 0; d < trace.day_count(); ++d) {
    request.first_sample_index = static_cast<std::uint64_t>(d) * per_day;
    request.samples.clear();
    for (std::size_t i = 0; i < per_day; ++i)
      request.samples.push_back(trace.at(d, i));
    retired += client.append_samples(request).days_retired;
  }
  EXPECT_EQ(retired, 20u);

  const MachineTrace sliced = trace.slice(20, 30);
  const std::shared_ptr<const MachineTrace> snap =
      server.store()->snapshot(trace.machine_id());
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->day_count(), 10);
  EXPECT_EQ(snap->calendar().epoch_day_of_week(),
            sliced.calendar().epoch_day_of_week());
  for (std::int64_t d = 0; d < 10; ++d)
    for (std::size_t i = 0; i < per_day; ++i)
      ASSERT_TRUE(snap->at(d, i) == sliced.at(d, i))
          << "day " << d << " sample " << i;

  const PredictionRequest predict{
      .target_day = 10,
      .window = {.start_of_day = 9 * kSecondsPerHour,
                 .length = 2 * kSecondsPerHour}};
  const Prediction served = client.predict(WireRequestItem{
      .machine_key = trace.machine_id(), .request = predict});
  const Prediction expected = AvailabilityPredictor().predict(sliced, predict);
  EXPECT_TRUE(same_bits(served.temporal_reliability,
                        expected.temporal_reliability));
  server.stop();
}

TEST(IngestDifferential, IngestDisabledServerRejectsAppendsFailFast) {
  PredictionServer server(ServerConfig{}, std::make_shared<PredictionService>());
  server.start();
  ClientConfig client_config;
  client_config.port = server.port();
  PredictionClient client(client_config);
  WireAppendRequest request;
  request.machine_id = "m";
  request.sampling_period = 60;
  request.total_mem_mb = 512;
  request.samples.push_back(ResourceSample{});
  // Non-retryable rejection: one attempt, no retry budget burned.
  EXPECT_THROW(client.append_samples(request), RemoteError);
  EXPECT_EQ(client.stats().attempts, 1u);
  EXPECT_EQ(client.stats().retries, 0u);
  server.stop();
}

TEST(IngestDifferential, SampleGapIsRejectedNotSilentlyAccepted) {
  const auto service = std::make_shared<PredictionService>();
  ServerConfig server_config;
  server_config.ingest = true;
  PredictionServer server(server_config, service);
  server.start();
  ClientConfig client_config;
  client_config.port = server.port();
  PredictionClient client(client_config);

  WireAppendRequest request;
  request.machine_id = "gappy";
  request.sampling_period = 60;
  request.total_mem_mb = 512;
  request.first_sample_index = 0;
  request.samples.assign(10, ResourceSample{});
  client.append_samples(request);
  request.first_sample_index = 11;  // skips index 10
  EXPECT_THROW(client.append_samples(request), RemoteError);
  // The frontier did not move.
  EXPECT_EQ(server.store()->next_index("gappy"), 10u);
  server.stop();
}

}  // namespace
}  // namespace fgcs::net
