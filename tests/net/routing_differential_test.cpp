// Sharded-routing differential gate (DESIGN.md §11): every committed golden
// row — the 128-row lab grid AND the 64-row transient-VM preemption grid —
// served through a 3-shard consistent-hash ring must be *bit-identical*
// (exact double equality, no tolerance) to the single-registry baseline the
// golden suite pins. And not on the happy path only: each row is first
// requested through a deliberately stale ring that excludes the true owner,
// so every row takes exactly one kWrongShard forwarding hop — proving the
// refuse-refetch-retry cycle cannot perturb a single bit.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/prediction_service.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/error.hpp"
#include "workload/preemption.hpp"
#include "workload/trace_generator.hpp"

#ifndef FGCS_GOLDEN_CSV
#error "build must define FGCS_GOLDEN_CSV (path to tests/golden/golden_tr.csv)"
#endif
#ifndef FGCS_GOLDEN_PREEMPTION_CSV
#error "build must define FGCS_GOLDEN_PREEMPTION_CSV"
#endif

namespace fgcs::net {
namespace {

struct GoldenRow {
  std::string machine;
  std::int64_t target_day = 0;
  SimTime window_start = 0;
  SimTime window_length = 0;
  double tr = 0.0;
};

std::vector<GoldenRow> load_fixture(const char* path) {
  std::ifstream in(path);
  if (!in) throw DataError(std::string("cannot open fixture ") + path);
  std::vector<GoldenRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream fields(line);
    GoldenRow row;
    std::string cell;
    std::getline(fields, row.machine, ',');
    std::getline(fields, cell, ',');
    row.target_day = std::stoll(cell);
    std::getline(fields, cell, ',');
    row.window_start = std::stoll(cell);
    std::getline(fields, cell, ',');
    row.window_length = std::stoll(cell);
    std::getline(fields, cell, ',');
    row.tr = std::strtod(cell.c_str(), nullptr);
    rows.push_back(std::move(row));
  }
  return rows;
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Both pinned fleets (fgcs_golden's exact parameters): the 4×30-day lab
/// fleet and the 4×30-day transient-VM preemption fleet.
std::vector<MachineTrace> differential_fleet() {
  WorkloadParams params;
  params.sampling_period = 60;
  std::vector<MachineTrace> fleet =
      generate_fleet(params, /*seed=*/20060619, /*count=*/4, /*days=*/30,
                     "golden");
  std::vector<MachineTrace> preempt = generate_preemption_fleet(
      PreemptionParams{}, /*seed=*/20060619, /*count=*/4, /*days=*/30,
      "preempt");
  for (MachineTrace& trace : preempt) fleet.push_back(std::move(trace));
  return fleet;
}

class RoutingDifferentialTest : public ::testing::Test {
 protected:
  static constexpr int kShards = 3;

  void SetUp() override {
    fleet_ = differential_fleet();
    for (const MachineTrace& trace : fleet_)
      by_id_.emplace(trace.machine_id(), &trace);

    // Every shard holds every trace: ownership decides who *answers*, so a
    // wrong ring surfaces as a kWrongShard refusal, never as a missing
    // machine — exactly the decentralized-registry serving contract.
    std::vector<RingMember> members;
    for (int s = 0; s < kShards; ++s) {
      ServerConfig config;
      config.node_id = "shard" + std::to_string(s);
      servers_.push_back(std::make_unique<PredictionServer>(
          config, std::make_shared<PredictionService>()));
      for (const MachineTrace& trace : fleet_)
        servers_.back()->add_trace(trace);
      servers_.back()->start();
      members.push_back(RingMember{config.node_id, "127.0.0.1",
                                   servers_.back()->port()});
    }
    ring_ = HashRing(members, /*vnodes=*/128, /*version=*/1);
    for (const auto& server : servers_) server->set_ring(ring_);
  }

  void TearDown() override {
    client_.reset();
    for (const auto& server : servers_) server->stop();
  }

  ShardedPredictionClient& client() {
    if (!client_)
      client_ = std::make_unique<ShardedPredictionClient>(ring_);
    return *client_;
  }

  static WireRequestItem wire_item(const GoldenRow& row) {
    return WireRequestItem{
        .machine_key = row.machine,
        .request = {.target_day = row.target_day,
                    .window = {.start_of_day = row.window_start,
                               .length = row.window_length},
                    .initial_state = std::nullopt}};
  }

  /// The true ring minus the row's owner: routing through it is guaranteed
  /// to hit a non-owner, whose kWrongShard answer must heal the view.
  HashRing stale_ring_excluding_owner_of(const std::string& key) const {
    const RingMember* owner = ring_.owner(key);
    std::vector<RingMember> members;
    for (const RingMember& member : ring_.members())
      if (member.node_id != owner->node_id) members.push_back(member);
    return HashRing(members, /*vnodes=*/128, /*version=*/0);
  }

  /// Serves every row and checks exact bits against the in-process
  /// single-registry baseline. With `force_stale_hop`, each row is routed
  /// through a stale owner-less ring first — exactly one hop per row.
  void expect_rows_bit_identical(const std::vector<GoldenRow>& rows,
                                 bool force_stale_hop) {
    PredictionService baseline;
    const std::uint64_t hops_before = client().stats().wrong_shard_hops;
    for (const GoldenRow& row : rows) {
      if (force_stale_hop)
        client().adopt_ring(stale_ring_excluding_owner_of(row.machine));
      const WireRequestItem item = wire_item(row);
      const Prediction served = client().predict(item);
      const Prediction expected =
          baseline.predict(*by_id_.at(row.machine), item.request);
      EXPECT_TRUE(same_bits(served.temporal_reliability,
                            expected.temporal_reliability))
          << row.machine << " day " << row.target_day << " start "
          << row.window_start << ": served " << served.temporal_reliability
          << " baseline " << expected.temporal_reliability;
      for (std::size_t s = 0; s < served.p_absorb.size(); ++s)
        EXPECT_TRUE(same_bits(served.p_absorb[s], expected.p_absorb[s]));
      // The fixture itself is cross-checked at its committed tolerance.
      EXPECT_NEAR(served.temporal_reliability, row.tr, 1e-12);
    }
    const std::uint64_t hops = client().stats().wrong_shard_hops - hops_before;
    if (force_stale_hop)
      EXPECT_EQ(hops, rows.size()) << "expected exactly one hop per row";
    else
      EXPECT_EQ(hops, 0u) << "fresh-ring serving must never hop";
  }

  std::vector<MachineTrace> fleet_;
  std::map<std::string, const MachineTrace*> by_id_;
  std::vector<std::unique_ptr<PredictionServer>> servers_;
  HashRing ring_;
  std::unique_ptr<ShardedPredictionClient> client_;
};

TEST_F(RoutingDifferentialTest, GoldenRowsBitIdenticalThroughFreshRing) {
  const std::vector<GoldenRow> rows = load_fixture(FGCS_GOLDEN_CSV);
  ASSERT_EQ(rows.size(), 128u) << "golden grid changed; update this test";
  expect_rows_bit_identical(rows, /*force_stale_hop=*/false);
  // The batch actually spread across shards (vacuous otherwise).
  std::uint64_t answering = 0;
  for (const auto& server : servers_)
    answering += server->stats().responses > 0;
  EXPECT_GE(answering, 2u) << "all keys landed on one shard";
}

TEST_F(RoutingDifferentialTest, GoldenRowsBitIdenticalThroughStaleRing) {
  const std::vector<GoldenRow> rows = load_fixture(FGCS_GOLDEN_CSV);
  ASSERT_EQ(rows.size(), 128u);
  expect_rows_bit_identical(rows, /*force_stale_hop=*/true);
  // Every hop was answered with the servers' (versioned) ring and adopted.
  EXPECT_EQ(client().ring().version(), ring_.version());
  std::uint64_t refusals = 0;
  for (const auto& server : servers_)
    refusals += server->stats().wrong_shard;
  EXPECT_EQ(refusals, rows.size());
}

TEST_F(RoutingDifferentialTest, PreemptionRowsBitIdenticalThroughFreshRing) {
  const std::vector<GoldenRow> rows =
      load_fixture(FGCS_GOLDEN_PREEMPTION_CSV);
  ASSERT_EQ(rows.size(), 64u) << "preemption grid changed; update this test";
  expect_rows_bit_identical(rows, /*force_stale_hop=*/false);
}

TEST_F(RoutingDifferentialTest, PreemptionRowsBitIdenticalThroughStaleRing) {
  const std::vector<GoldenRow> rows =
      load_fixture(FGCS_GOLDEN_PREEMPTION_CSV);
  ASSERT_EQ(rows.size(), 64u);
  expect_rows_bit_identical(rows, /*force_stale_hop=*/true);
}

TEST_F(RoutingDifferentialTest, WholeGridAsOneBatchMatchesBaseline) {
  // The batched path exercises the multi-shard partition/stitch logic: one
  // predict_batch spanning all 192 rows, answers re-aligned to request
  // order, bit-identical throughout.
  std::vector<GoldenRow> rows = load_fixture(FGCS_GOLDEN_CSV);
  for (GoldenRow& row : load_fixture(FGCS_GOLDEN_PREEMPTION_CSV))
    rows.push_back(std::move(row));
  ASSERT_EQ(rows.size(), 192u);
  std::vector<WireRequestItem> items;
  items.reserve(rows.size());
  for (const GoldenRow& row : rows) items.push_back(wire_item(row));

  const std::vector<Prediction> served = client().predict_batch(items);
  ASSERT_EQ(served.size(), rows.size());
  PredictionService baseline;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Prediction expected = baseline.predict(
        *by_id_.at(rows[i].machine), items[i].request);
    EXPECT_TRUE(same_bits(served[i].temporal_reliability,
                          expected.temporal_reliability))
        << "row " << i << " (" << rows[i].machine << ")";
  }
  std::set<std::string> owning;
  for (const WireRequestItem& item : items)
    owning.insert(ring_.owner(item.machine_key)->node_id);
  EXPECT_EQ(client().stats().sub_batches, owning.size())
      << "one wire batch per owning shard";
}

}  // namespace
}  // namespace fgcs::net
