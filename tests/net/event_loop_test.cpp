// EventLoop unit tests over plain pipes: registration, level-triggered
// dispatch, interest modification, safe self-removal mid-dispatch, and the
// cross-thread stop() wake-up.
#include "net/event_loop.hpp"

#include <gtest/gtest.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <array>
#include <thread>
#include <vector>

namespace fgcs::net {
namespace {

struct Pipe {
  std::array<int, 2> fd{-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fd.data()), 0); }
  ~Pipe() {
    if (fd[0] >= 0) ::close(fd[0]);
    if (fd[1] >= 0) ::close(fd[1]);
  }
  int reader() const { return fd[0]; }
  int writer() const { return fd[1]; }
  void write_byte() const {
    const char byte = 'x';
    EXPECT_EQ(::write(writer(), &byte, 1), 1);
  }
  void read_byte() const {
    char byte = 0;
    EXPECT_EQ(::read(reader(), &byte, 1), 1);
  }
};

TEST(EventLoop, DispatchesReadableFd) {
  EventLoop loop;
  Pipe pipe;
  int calls = 0;
  loop.add(pipe.reader(), EPOLLIN, [&](std::uint32_t events) {
    EXPECT_TRUE(events & EPOLLIN);
    ++calls;
    pipe.read_byte();
  });
  EXPECT_TRUE(loop.contains(pipe.reader()));
  EXPECT_EQ(loop.size(), 1u);

  EXPECT_EQ(loop.poll(0), 0);  // nothing ready yet
  pipe.write_byte();
  EXPECT_EQ(loop.poll(1000), 1);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(loop.poll(0), 0);  // drained: level-triggering went quiet
}

TEST(EventLoop, LevelTriggeredFdStaysReadyUntilDrained) {
  EventLoop loop;
  Pipe pipe;
  int calls = 0;
  loop.add(pipe.reader(), EPOLLIN, [&](std::uint32_t) {
    // Deliberately consume only one of the buffered bytes per event: the
    // level-triggered loop must re-dispatch until the pipe is dry. This is
    // the mechanism net.read.short leans on.
    ++calls;
    pipe.read_byte();
  });
  pipe.write_byte();
  pipe.write_byte();
  pipe.write_byte();
  while (loop.poll(100) > 0) {
  }
  EXPECT_EQ(calls, 3);
}

TEST(EventLoop, ModifySwitchesInterest) {
  EventLoop loop;
  Pipe pipe;
  int write_events = 0;
  loop.add(pipe.writer(), 0u, [&](std::uint32_t events) {
    if (events & EPOLLOUT) ++write_events;
  });
  EXPECT_EQ(loop.poll(0), 0);  // no interest registered yet
  loop.modify(pipe.writer(), EPOLLOUT);
  EXPECT_EQ(loop.poll(1000), 1);  // an empty pipe is writable
  EXPECT_EQ(write_events, 1);
  loop.modify(pipe.writer(), 0u);
  EXPECT_EQ(loop.poll(0), 0);
}

TEST(EventLoop, HandlerMaySelfRemove) {
  EventLoop loop;
  Pipe pipe;
  int calls = 0;
  loop.add(pipe.reader(), EPOLLIN, [&](std::uint32_t) {
    ++calls;
    loop.remove(pipe.reader());
  });
  pipe.write_byte();
  EXPECT_EQ(loop.poll(1000), 1);
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(loop.contains(pipe.reader()));
  // Byte left unread, fd unregistered: the loop no longer reports it.
  EXPECT_EQ(loop.poll(0), 0);
}

TEST(EventLoop, HandlerMayRemoveAPeerPendingInTheSameBatch) {
  // Both pipes become readable in one epoll_wait batch; whichever handler
  // runs first removes the other. The loop must re-check registration per
  // dispatch, not run a stale handler.
  EventLoop loop;
  Pipe a;
  Pipe b;
  int total = 0;
  loop.add(a.reader(), EPOLLIN, [&](std::uint32_t) {
    ++total;
    loop.remove(b.reader());
    a.read_byte();
  });
  loop.add(b.reader(), EPOLLIN, [&](std::uint32_t) {
    ++total;
    loop.remove(a.reader());
    b.read_byte();
  });
  a.write_byte();
  b.write_byte();
  while (loop.poll(100) > 0) {
  }
  EXPECT_EQ(total, 1);
  EXPECT_EQ(loop.size(), 1u);
}

TEST(EventLoop, RemoveIsIdempotentAndUnknownFdIsNoop) {
  EventLoop loop;
  Pipe pipe;
  loop.add(pipe.reader(), EPOLLIN, [](std::uint32_t) {});
  loop.remove(pipe.reader());
  loop.remove(pipe.reader());
  loop.remove(12345);
  EXPECT_EQ(loop.size(), 0u);
}

TEST(EventLoop, StopWakesABlockedRun) {
  EventLoop loop;
  std::thread runner([&] { loop.run(); });
  // No registered fds: run() blocks in poll(-1) until the eventfd wake.
  loop.stop();
  runner.join();
  // The stop flag was consumed by run()'s exit; the loop is reusable.
  Pipe pipe;
  int calls = 0;
  loop.add(pipe.reader(), EPOLLIN, [&](std::uint32_t) {
    ++calls;
    pipe.read_byte();
    loop.stop();
  });
  pipe.write_byte();
  loop.run();  // returns once the handler stops it
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace fgcs::net
