// End-to-end integration tests: generator → monitor → estimator → predictor
// → evaluation, exercising the full pipeline the benchmarks rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "fgcs.hpp"
#include "test_support.hpp"

namespace fgcs {
namespace {

WorkloadParams fast_params() {
  WorkloadParams params;
  params.sampling_period = 60;
  return params;
}

TEST(IntegrationTest, PredictionBeatsCoinFlipOnGeneratedTraces) {
  // Generate 6 weeks, train on the first half, evaluate windows on the rest.
  TraceGenerator generator(fast_params(), 101);
  const MachineTrace trace = generator.generate("m0", 42);
  EstimatorConfig config;
  config.training_days = 10;
  config.thresholds = test::test_thresholds();
  const AvailabilityPredictor predictor(config);
  const StateClassifier classifier(config.thresholds, 60);

  RunningStats errors;
  for (const SimTime start_hour : {8, 12, 18}) {
    for (const SimTime len_hours : {1, 2, 4}) {
      const TimeWindow window{.start_of_day = start_hour * kSecondsPerHour,
                              .length = len_hours * kSecondsPerHour};
      // Evaluate against all later weekdays of the same type.
      std::vector<std::int64_t> test_days;
      for (std::int64_t d = 28; d < 42; ++d)
        if (trace.day_type(d) == DayType::kWeekday) test_days.push_back(d);

      const Prediction p = predictor.predict(
          trace, {.target_day = test_days.front(), .window = window});
      const EmpiricalTr emp = empirical_tr(trace, test_days, window, classifier);
      if (!emp.tr || *emp.tr <= 0.0) continue;
      errors.add(relative_error(p.temporal_reliability, *emp.tr));
    }
  }
  ASSERT_GT(errors.count(), 4u);
  // The paper reports ≤ 13.5% average error on the real testbed; on the
  // synthetic substrate we only insist the prediction is clearly informative.
  EXPECT_LT(errors.mean(), 0.35);
}

TEST(IntegrationTest, MonitorReconstructionFeedsPredictorIdentically) {
  TraceGenerator generator(fast_params(), 77);
  const MachineTrace source = generator.generate("m0", 8);
  auto machine = make_replay_machine(source, test::test_thresholds());
  ResourceMonitor monitor(*machine);
  for (SimTime t = 60; t <= 8 * kSecondsPerDay; t += 60) monitor.on_tick(t);
  const MachineTrace observed = monitor.to_trace();
  ASSERT_EQ(observed.day_count(), 8);

  const AvailabilityPredictor predictor;
  const TimeWindow window{.start_of_day = 9 * kSecondsPerHour,
                          .length = 2 * kSecondsPerHour};
  const Prediction from_source =
      predictor.predict(source, {.target_day = 7, .window = window});
  const Prediction from_observed =
      predictor.predict(observed, {.target_day = 7, .window = window});
  // Downtime reconstruction zeroes the load during outages, which the
  // classifier maps to S5 either way: predictions agree.
  EXPECT_NEAR(from_source.temporal_reliability,
              from_observed.temporal_reliability, 1e-9);
}

TEST(IntegrationTest, SchedulerPrefersMachineThatCompletesFaster) {
  // A quiet machine and a busy one: the TR-driven scheduler should finish a
  // morning job sooner than it would on the busy machine.
  WorkloadParams quiet = fast_params();
  quiet.session_rate_per_hour = 1.0;
  quiet.spike_rate_per_hour = 0.05;
  quiet.reboot_rate_per_day = 0.05;
  WorkloadParams busy = fast_params();
  busy.session_rate_per_hour = 14.0;
  busy.spike_rate_per_hour = 3.0;

  TraceGenerator quiet_generator(quiet, 5);
  TraceGenerator busy_generator(busy, 6);
  const MachineTrace quiet_trace = quiet_generator.generate("quiet", 10);
  const MachineTrace busy_trace = busy_generator.generate("busy", 10);

  Gateway quiet_gateway(quiet_trace, test::test_thresholds());
  Gateway busy_gateway(busy_trace, test::test_thresholds());
  Registry registry;
  registry.publish(quiet_gateway);
  registry.publish(busy_gateway);

  const JobScheduler scheduler(registry);
  const SimTime submit = 8 * kSecondsPerDay + 9 * kSecondsPerHour;
  Gateway* selected = scheduler.select_machine(submit, 2 * kSecondsPerHour);
  ASSERT_NE(selected, nullptr);
  EXPECT_EQ(selected->machine_id(), "quiet");
}

TEST(IntegrationTest, NoiseInjectionDisturbsSmallWindowsMore) {
  // A miniature of the paper's Fig. 8 mechanism: one injected occurrence in
  // each of four recent training days, shortly after 8:00.
  TraceGenerator generator(fast_params(), 55);
  const MachineTrace clean = generator.generate("m0", 12);
  NoiseParams noise;
  noise.around = 8 * kSecondsPerHour + 25 * kSecondsPerMinute;
  noise.spread = 20 * kSecondsPerMinute;
  Rng rng(9);
  MachineTrace noisy = clean;
  for (const std::int64_t day : {7, 8, 9, 10})
    noisy = inject_unavailability(noisy, day, 1, noise, rng);

  EstimatorConfig config;
  config.training_days = 8;
  const AvailabilityPredictor predictor(config);

  auto discrepancy = [&](SimTime hours) {
    const TimeWindow w{.start_of_day = 8 * kSecondsPerHour,
                       .length = hours * kSecondsPerHour};
    const double tr_clean =
        predictor.predict(clean, {.target_day = 11, .window = w})
            .temporal_reliability;
    const double tr_noisy =
        predictor.predict(noisy, {.target_day = 11, .window = w})
            .temporal_reliability;
    return tr_clean > 0 ? std::abs(tr_clean - tr_noisy) / tr_clean : 0.0;
  };
  // Four instances must clearly disturb the 1 h window…
  EXPECT_GT(discrepancy(1), 0.10);
  // …and more than (or comparably to) the 8 h window, which dilutes them.
  EXPECT_GE(discrepancy(1) + 1e-9, discrepancy(8) * 0.5);
}

TEST(IntegrationTest, FullTraceSaveLoadPredictRoundTrip) {
  TraceGenerator generator(fast_params(), 31);
  const MachineTrace trace = generator.generate("m0", 10);
  std::stringstream buffer;
  trace.save(buffer);
  const MachineTrace loaded = MachineTrace::load(buffer);

  const AvailabilityPredictor predictor;
  const TimeWindow window{.start_of_day = 10 * kSecondsPerHour,
                          .length = 3 * kSecondsPerHour};
  const double a = predictor.predict(trace, {.target_day = 9, .window = window})
                       .temporal_reliability;
  const double b =
      predictor.predict(loaded, {.target_day = 9, .window = window})
          .temporal_reliability;
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace fgcs
