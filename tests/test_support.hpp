// Shared helpers for the fgcs test suite: compact builders for traces,
// samples, and SMP models with known structure.
#pragma once

#include <cstdint>
#include <vector>

#include "core/semi_markov.hpp"
#include "core/states.hpp"
#include "core/thresholds.hpp"
#include "trace/machine_trace.hpp"
#include "util/rng.hpp"

namespace fgcs::test {

/// A sample with the given load percent, plenty of memory, machine up.
ResourceSample sample(int load_pct);

/// A sample with explicit memory / liveness.
ResourceSample sample(int load_pct, int free_mem_mb, bool up);

/// An all-day sample vector with constant load (period must divide 86400).
std::vector<ResourceSample> constant_day(SimTime period, int load_pct);

/// Builds a trace of `days` constant-load days.
MachineTrace constant_trace(int days, int load_pct, SimTime period = 60,
                            int total_mem_mb = 512, int epoch_dow = 0);

/// Thresholds used throughout the tests (paper values, 1-minute transient).
Thresholds test_thresholds();

/// A random, valid 5-state FGCS SMP model (S1/S2 transient, S3..S5
/// absorbing) with full exit mass and holding-time support ≤ `horizon`.
SmpModel random_fgcs_model(std::size_t horizon, Rng& rng,
                           bool allow_defective = false);

}  // namespace fgcs::test
