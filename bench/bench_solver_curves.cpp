// Extension — precomputed absorption curves vs per-call Eq. 3 solves.
//
// Three tables:
//
//   cold solve   : building an AbsorptionCurves table at horizon T vs one
//                  SparseTrSolver::solve at the same T. Both run the O(T²)
//                  recursion once; the table additionally serves BOTH initial
//                  states and every horizon ≤ T afterwards.
//   warm lookup  : answering a TR query off a built table vs the old warm
//                  path (construct SparseTrSolver — revalidating the model —
//                  and re-run the recursion). Acceptance gate: curves ≥ 4×.
//   fleet probe  : a 1000-machine scheduler placement probe through
//                  PredictionService, cold then warm, with the warm pass
//                  answered entirely from cached curves.
//
// All compared paths must produce bit-identical TR values; any divergence
// fails the run.
#include <chrono>
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "harness.hpp"

using namespace fgcs;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  print_banner(std::cout,
               "absorption-curve cache: cold build, warm lookup, fleet probe");
  constexpr int kDays = 14;
  const EstimatorConfig estimator_config = bench::bench_estimator_config();
  bool all_identical = true;

  // One representative model: tomorrow's 8:00–11:00 window on a lab machine.
  const std::vector<MachineTrace> one = bench::lab_fleet(1, kDays);
  const TimeWindow window{.start_of_day = 8 * kSecondsPerHour,
                          .length = 3 * kSecondsPerHour};
  const SmpEstimator estimator(estimator_config);
  const SmpModel model =
      estimator.estimate(one[0], one[0].day_count(), window);

  // --- Cold solve: one table build vs one per-initial-state solve. ---------
  {
    Table table({"steps", "sparse_solve_ms", "curve_build_ms", "build_x"});
    for (const std::size_t steps : {180u, 720u, 1440u}) {
      const SparseTrSolver solver(model);
      constexpr int kReps = 20;
      const auto t0 = std::chrono::steady_clock::now();
      double sink = 0.0;
      for (int rep = 0; rep < kReps; ++rep)
        sink += solver.solve(State::kS1, steps).temporal_reliability;
      const double solve_s = seconds_since(t0) / kReps;

      const auto t1 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < kReps; ++rep) {
        const AbsorptionCurves curves(model, steps);
        sink += curves.result_at(State::kS1, steps).temporal_reliability;
      }
      const double build_s = seconds_since(t1) / kReps;
      if (!std::isfinite(sink)) return 1;
      table.add_row({std::to_string(steps), Table::num(1e3 * solve_s),
                     Table::num(1e3 * build_s),
                     Table::num(solve_s / build_s, 2)});
    }
    std::cout << "cold solve (one build tabulates BOTH initial states):\n";
    table.print(std::cout);
  }

  // --- Warm lookup: curve read vs construct-and-resolve. -------------------
  double lookup_speedup = 0.0;
  {
    const std::size_t steps = window.steps(one[0].sampling_period());
    const AbsorptionCurves curves(model, steps);
    constexpr int kQueries = 2000;

    // Old warm path: every query constructs a solver (re-running
    // SmpModel::validate) and pays the full recursion.
    const auto t0 = std::chrono::steady_clock::now();
    double sink_old = 0.0;
    for (int q = 0; q < kQueries; ++q) {
      const SparseTrSolver solver(model);
      sink_old += solver
                      .solve(q % 2 == 0 ? State::kS1 : State::kS2,
                             steps - static_cast<std::size_t>(q % 8))
                      .temporal_reliability;
    }
    const double old_s = seconds_since(t0) / kQueries;

    const auto t1 = std::chrono::steady_clock::now();
    double sink_new = 0.0;
    for (int q = 0; q < kQueries; ++q)
      sink_new += curves
                      .result_at(q % 2 == 0 ? State::kS1 : State::kS2,
                                 steps - static_cast<std::size_t>(q % 8))
                      .temporal_reliability;
    const double new_s = seconds_since(t1) / kQueries;

    all_identical = all_identical && sink_old == sink_new;
    lookup_speedup = old_s / new_s;
    Table table({"queries", "construct_solve_us", "curve_lookup_us", "x"});
    table.add_row({std::to_string(kQueries), Table::num(1e6 * old_s),
                   Table::num(1e6 * new_s), Table::num(lookup_speedup, 1)});
    std::cout << "\nwarm lookup (same model, varied init/horizon):\n";
    table.print(std::cout);
  }

  // --- Fleet probe: 1000 machines through the service. ---------------------
  {
    const std::vector<MachineTrace> fleet = bench::lab_fleet(1000, kDays);
    std::vector<BatchRequest> requests;
    requests.reserve(fleet.size());
    for (const MachineTrace& trace : fleet)
      requests.push_back(BatchRequest{
          .trace = &trace,
          .request = {.target_day = trace.day_count(), .window = window}});

    PredictionService service(ServiceConfig{.estimator = estimator_config});
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<Prediction> cold = service.predict_batch(requests);
    const double cold_s = seconds_since(t0);

    constexpr int kWarmReps = 5;
    std::vector<Prediction> warm;
    const auto t1 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kWarmReps; ++rep)
      warm = service.predict_batch(requests);
    const double warm_s = seconds_since(t1) / kWarmReps;

    for (std::size_t i = 0; i < cold.size(); ++i)
      all_identical = all_identical && cold[i].temporal_reliability ==
                                           warm[i].temporal_reliability;

    Table table({"machines", "cold_ms", "warm_ms", "warm_us_per_probe"});
    table.add_row({std::to_string(fleet.size()), Table::num(1e3 * cold_s),
                   Table::num(1e3 * warm_s),
                   Table::num(1e6 * warm_s /
                              static_cast<double>(fleet.size()))});
    std::cout << "\nfleet probe (one window, every machine):\n";
    table.print(std::cout);
  }

  std::cout << "\nTR values identical across compared paths: "
            << (all_identical ? "yes" : "NO") << "\n";
  std::cout << "warm lookup speedup: " << Table::num(lookup_speedup, 1)
            << "x (target >= 4x): "
            << (lookup_speedup >= 4.0 ? "PASS" : "FAIL") << "\n";
  return all_identical && lookup_speedup >= 4.0 ? 0 : 1;
}
