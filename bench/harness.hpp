// Shared plumbing for the benchmark binaries: fleet construction, the
// train/test evaluation loop used by Figs. 5–7, and common constants.
//
// Accuracy benches run at a 60 s sampling period: the paper's 6 s period puts
// a 10-hour window at 6000 discretization steps and the O(n²) recursion makes
// a full 240-window × fleet sweep take hours on one core. The estimator's
// statistics and the empirical TR are insensitive to this (ablation
// bench_abl_discretization quantifies it); the Fig. 4 overhead bench keeps
// the paper's native 6 s period since cost *is* its subject.
#pragma once

#include <optional>
#include <vector>

#include "fgcs.hpp"

namespace fgcs::bench {

inline constexpr SimTime kPeriod = 60;          // accuracy-bench sampling period
inline constexpr int kTraceDays = 91;           // ~3 months (13 weeks)
inline constexpr std::uint64_t kFleetSeed = 20060627;  // HPDC'06 ;-)

/// The default evaluation fleet: student-lab machines, 13 weeks of history.
std::vector<MachineTrace> lab_fleet(int machines, int days = kTraceDays,
                                    SimTime period = kPeriod,
                                    double drift_per_day = 0.0,
                                    std::uint64_t seed = kFleetSeed);

/// Splits [0, day_count) at `training_fraction` and returns the test days of
/// the requested type (training days are those before the split).
std::vector<std::int64_t> test_days_of_type(const MachineTrace& trace,
                                            double training_fraction,
                                            DayType type);

/// First test day of the given type (the prediction target), if any.
std::optional<std::int64_t> first_test_day(const MachineTrace& trace,
                                           double training_fraction,
                                           DayType type);

struct WindowEvaluation {
  double predicted_tr = 0.0;
  double empirical_tr = 0.0;
  double error = 0.0;  // |pred − emp| / emp
};

/// One train/test evaluation of the SMP predictor on `window`:
/// prediction anchored at the first test day of `type`, empirical TR over all
/// test days of `type`. Empty when the window has no eligible test days or
/// the empirical TR is 0 (relative error undefined — paper §7.2 caveat).
std::optional<WindowEvaluation> evaluate_smp_window(
    const MachineTrace& trace, double training_fraction, DayType type,
    const TimeWindow& window, const EstimatorConfig& config);

/// Same evaluation for a linear time-series model (paper §6.2 scheme).
std::optional<WindowEvaluation> evaluate_ts_window(
    const MachineTrace& trace, double training_fraction, DayType type,
    const TimeWindow& window, TimeSeriesModel& model,
    const Thresholds& thresholds);

/// Default estimator configuration for the benches.
EstimatorConfig bench_estimator_config();

}  // namespace fgcs::bench
