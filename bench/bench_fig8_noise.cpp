// Fig. 8 — robustness: prediction discrepancy under injected noise.
//
// Protocol (paper §7.3): one instance of noise is one artificial
// unavailability occurrence (hold uniform in [60, 1800] s) inserted around
// 8:00 into a weekday training log — k instances go into k distinct recent
// training days. The metric is the relative difference between the TR
// predicted from the noisy logs and from the originals, for future windows
// of length T ∈ {1, 2, 3, 5, 10} h starting at 8:00.
//
// Expected shape: small windows are far more sensitive (the paper sees >50 %
// at T = 1 h with 4 instances) while larger windows absorb more history per
// day and stay calm (<6 % at T ≥ 2–3 h even with 10 instances).
#include <cmath>
#include <iostream>

#include "harness.hpp"

using namespace fgcs;

int main() {
  const int kMachines = 4;
  const std::vector<MachineTrace> fleet = bench::lab_fleet(kMachines);
  const EstimatorConfig config = bench::bench_estimator_config();
  const AvailabilityPredictor predictor(config);
  const SmpEstimator estimator(config);

  // Noise lands shortly after the window start so the injected occurrence is
  // a transition *inside* the 8:00 windows (an occurrence straddling 8:00
  // would make the training day start failed and be discarded instead).
  NoiseParams noise;
  noise.around = 8 * kSecondsPerHour + 25 * kSecondsPerMinute;
  noise.spread = 20 * kSecondsPerMinute;

  const std::vector<int> noise_amounts{1, 2, 4, 6, 8, 10};
  const std::vector<SimTime> lengths_hr{1, 2, 3, 5, 10};

  print_banner(std::cout,
               "Fig. 8 — prediction discrepancy vs injected noise (8:00 "
               "weekday windows)");
  std::vector<std::string> headers{"noise"};
  for (const SimTime t : lengths_hr)
    headers.push_back("T=" + std::to_string(t) + "h");
  Table table(headers);

  for (const int amount : noise_amounts) {
    std::vector<std::string> row{std::to_string(amount)};
    for (const SimTime len_hr : lengths_hr) {
      const TimeWindow window{.start_of_day = 8 * kSecondsPerHour,
                              .length = len_hr * kSecondsPerHour};
      RunningStats discrepancy;
      for (const MachineTrace& trace : fleet) {
        const std::int64_t target =
            trace.days_of_type(DayType::kWeekday, 0, trace.day_count()).back();
        const std::vector<std::int64_t> training =
            estimator.training_days_for(trace, target, window);
        if (training.size() < static_cast<std::size_t>(amount)) continue;

        const double tr_clean =
            predictor.predict(trace, {.target_day = target, .window = window})
                .temporal_reliability;

        // k instances into the k most recent training days, one each.
        Rng rng(bench::kFleetSeed ^ static_cast<std::uint64_t>(amount * 131));
        MachineTrace noisy = trace;
        for (int instance = 0; instance < amount; ++instance) {
          const std::int64_t day = training[training.size() - 1 -
                                            static_cast<std::size_t>(instance)];
          noisy = inject_unavailability(noisy, day, 1, noise, rng);
        }
        const double tr_noisy =
            predictor.predict(noisy, {.target_day = target, .window = window})
                .temporal_reliability;
        if (tr_clean > 0.0)
          discrepancy.add(std::abs(tr_noisy - tr_clean) / tr_clean);
      }
      row.push_back(discrepancy.empty() ? "n/a"
                                        : Table::pct(discrepancy.mean()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "(paper: T=1h is noise-sensitive — >50% already at 4 "
               "instances; windows >= 2-3h absorb more history per day and "
               "stay below ~6%)\n";
  return 0;
}
