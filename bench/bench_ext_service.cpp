// Extension — fleet-scale batched prediction through PredictionService.
//
// A placement scheduler probes every machine in the fleet with the same
// window, then probes again with the next job; Trua- and uPredict-style
// systems only pay off when that traffic is amortized. This bench measures,
// across fleet sizes, the throughput of
//
//   per-call : AvailabilityPredictor::predict per request (the seed path)
//   cold     : one predict_batch on an empty cache (thread-pool fan-out)
//   warm     : the same batch again, answered from the memoized cache
//
// and verifies that all three return identical TR values. Acceptance target:
// warm batch ≥ 5× faster than per-call on the 20-machine fleet.
//
// A second table isolates dispatch overhead: the same warm-cache predict
// body fanned out by the retired spawn-per-call parallel_for versus the
// persistent work-stealing pool, at batch sizes 1/20/200 with width forced
// to 4 so both paths actually dispatch even on a single-CPU host.
#include <chrono>
#include <cmath>
#include <functional>
#include <iostream>
#include <vector>

#include "harness.hpp"
#include "util/parallel.hpp"
#include "util/thread_pool.hpp"

using namespace fgcs;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<BatchRequest> probe_requests(
    const std::vector<MachineTrace>& fleet) {
  // The windows a day's placements probe: morning-to-evening starts, short
  // and long jobs, all anchored on "tomorrow" relative to the history.
  std::vector<BatchRequest> requests;
  for (const MachineTrace& trace : fleet) {
    for (const SimTime start_hr : {6, 8, 10, 12, 14, 16, 18, 20}) {
      for (const SimTime len_hr : {1, 2, 4}) {
        requests.push_back(BatchRequest{
            .trace = &trace,
            .request = {.target_day = trace.day_count(),
                        .window = {.start_of_day = start_hr * kSecondsPerHour,
                                   .length = len_hr * kSecondsPerHour}}});
      }
    }
  }
  return requests;
}

bool identical_trs(const std::vector<Prediction>& a,
                   const std::vector<Prediction>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].temporal_reliability != b[i].temporal_reliability) return false;
  return true;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "fleet-scale batched prediction: cold vs warm PredictionService");
  Table table({"machines", "requests", "percall_ms", "cold_ms", "warm_ms",
               "cold_x", "warm_x", "warm_hit_rate"});

  constexpr int kDays = 28;
  const EstimatorConfig estimator = bench::bench_estimator_config();
  bool all_identical = true;
  double warm_speedup_20 = 0.0;

  for (const int machines : {1, 20, 200}) {
    const std::vector<MachineTrace> fleet = bench::lab_fleet(machines, kDays);
    const std::vector<BatchRequest> requests = probe_requests(fleet);

    // Seed path: one AvailabilityPredictor::predict per request, serially.
    const AvailabilityPredictor predictor(estimator);
    std::vector<Prediction> percall;
    percall.reserve(requests.size());
    const auto t0 = std::chrono::steady_clock::now();
    for (const BatchRequest& request : requests)
      percall.push_back(predictor.predict(*request.trace, request.request));
    const double percall_s = seconds_since(t0);

    PredictionService service(ServiceConfig{.estimator = estimator});
    const auto t1 = std::chrono::steady_clock::now();
    const std::vector<Prediction> cold = service.predict_batch(requests);
    const double cold_s = seconds_since(t1);

    // Warm: repeat the batch; average over a few reps (it is fast).
    constexpr int kWarmReps = 5;
    std::vector<Prediction> warm;
    const auto t2 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kWarmReps; ++rep)
      warm = service.predict_batch(requests);
    const double warm_s = seconds_since(t2) / kWarmReps;

    all_identical = all_identical && identical_trs(percall, cold) &&
                    identical_trs(percall, warm);
    const double warm_speedup = percall_s / warm_s;
    if (machines == 20) warm_speedup_20 = warm_speedup;

    const ServiceStats stats = service.stats();
    const double hit_rate =
        static_cast<double>(stats.hits + stats.partial_hits) /
        static_cast<double>(stats.lookups);
    table.add_row({std::to_string(machines), std::to_string(requests.size()),
                   Table::num(1e3 * percall_s), Table::num(1e3 * cold_s),
                   Table::num(1e3 * warm_s), Table::num(percall_s / cold_s, 1),
                   Table::num(warm_speedup, 1), Table::pct(hit_rate, 1)});
  }

  table.print(std::cout);

  // Dispatch overhead: thread-spawn-per-call vs persistent pool, identical
  // warm-cache body. A dedicated 4-worker pool (not default_pool, which may
  // size to 1 on small hosts) and an explicit width of 4 keep the two paths
  // comparable; at batch 1 both degrade to the caller running serially, so
  // that row reads as pure call overhead. Informational only — CI timing
  // noise makes a hard gate here flaky; the warm-speedup gate above stands.
  {
    std::cout << "\ndispatch overhead (same warm body, width 4):\n";
    Table dispatch({"batch", "spawn_ms", "pool_ms", "spawn_over_pool"});
    const std::vector<MachineTrace> fleet = bench::lab_fleet(20, kDays);
    const std::vector<BatchRequest> requests = probe_requests(fleet);
    PredictionService service(ServiceConfig{.estimator = estimator});
    (void)service.predict_batch(requests);  // warm every entry once
    ThreadPool pool(4);
    for (const std::size_t batch : {1u, 20u, 200u}) {
      const std::size_t n = std::min<std::size_t>(batch, requests.size());
      std::vector<Prediction> out(n);
      const std::function<void(std::size_t)> body = [&](std::size_t i) {
        out[i] = service.predict(*requests[i].trace, requests[i].request);
      };
      constexpr int kReps = 50;
      const auto s0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < kReps; ++rep) spawn_parallel_for(n, body, 4);
      const double spawn_s = seconds_since(s0) / kReps;
      const auto s1 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < kReps; ++rep) pool.for_each_index(n, body, 4);
      const double pool_s = seconds_since(s1) / kReps;
      dispatch.add_row({std::to_string(n), Table::num(1e3 * spawn_s),
                        Table::num(1e3 * pool_s),
                        Table::num(spawn_s / pool_s, 1)});
    }
    dispatch.print(std::cout);
  }

  // Partial-hit latency: the model is warm but the requested initial state
  // has no cached Prediction yet. The old path constructed a SparseTrSolver
  // (re-running SmpModel::validate) and re-ran the O(n²) recursion; the
  // entry's precomputed absorption curves turn the same query into an O(1)
  // table read. Baseline reproduces the old work against the same models.
  double partial_speedup = 0.0;
  {
    const std::vector<MachineTrace> fleet = bench::lab_fleet(20, kDays);
    const TimeWindow window{.start_of_day = 8 * kSecondsPerHour,
                            .length = 3 * kSecondsPerHour};
    const SmpEstimator est(estimator);
    std::vector<SmpModel> models;
    std::vector<std::size_t> steps;
    for (const MachineTrace& trace : fleet) {
      models.push_back(est.estimate(trace, trace.day_count(), window));
      steps.push_back(window.steps(trace.sampling_period()));
    }

    constexpr int kReps = 20;
    double old_s = 0.0, new_s = 0.0, sink_old = 0.0, sink_new = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      // Fresh service per rep so every S2 query is a genuine partial hit
      // (the hit it becomes afterwards is the previous table's row).
      PredictionService service(ServiceConfig{.estimator = estimator});
      for (const MachineTrace& trace : fleet) {  // warm the models, untimed
        PredictionRequest request{.target_day = trace.day_count(),
                                  .window = window};
        request.initial_state = State::kS1;
        (void)service.predict(trace, request);
      }
      const auto t0 = std::chrono::steady_clock::now();
      for (const MachineTrace& trace : fleet) {
        PredictionRequest request{.target_day = trace.day_count(),
                                  .window = window};
        request.initial_state = State::kS2;
        sink_new += service.predict(trace, request).temporal_reliability;
      }
      new_s += seconds_since(t0);

      const auto t1 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < models.size(); ++i) {
        const SparseTrSolver solver(models[i]);
        sink_old += solver.solve(State::kS2, steps[i]).temporal_reliability;
      }
      old_s += seconds_since(t1);
    }
    all_identical = all_identical && sink_old == sink_new;
    partial_speedup = old_s / new_s;

    std::cout << "\npartial hit (warm model, un-solved initial state):\n";
    Table partial({"queries", "old_path_us", "curve_read_us", "x"});
    const double q = static_cast<double>(kReps) * 20.0;
    partial.add_row({std::to_string(static_cast<int>(q)),
                     Table::num(1e6 * old_s / q), Table::num(1e6 * new_s / q),
                     Table::num(partial_speedup, 1)});
    partial.print(std::cout);
  }

  std::cout << "\nTR values identical across per-call/cold/warm: "
            << (all_identical ? "yes" : "NO") << "\n";
  std::cout << "warm batch speedup at 20 machines: " << Table::num(warm_speedup_20, 1)
            << "x (target >= 5x): "
            << (warm_speedup_20 >= 5.0 ? "PASS" : "FAIL") << "\n";
  std::cout << "partial-hit speedup vs construct+solve: "
            << Table::num(partial_speedup, 1) << "x (target >= 4x): "
            << (partial_speedup >= 4.0 ? "PASS" : "FAIL") << "\n";
  return all_identical && warm_speedup_20 >= 5.0 && partial_speedup >= 4.0
             ? 0
             : 1;
}
