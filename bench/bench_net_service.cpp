// Extension — prediction serving over the wire (DESIGN.md §9).
//
// What does shipping the batch through the loopback socket stack cost on top
// of calling PredictionService in-process? A placement scheduler probing a
// 20-machine fleet round-trips one request frame per decision, so the number
// that matters is the warm batch-of-20 round-trip: encode → frame → epoll
// server → memoized service → frame → decode. This bench measures, for a
// fleet of 20 machines with warm caches on both sides,
//
//   inproc : PredictionService::predict_batch, median over many reps
//   net    : PredictionClient::predict_batch over 127.0.0.1, same batch
//
// plus the cold (first-contact) round-trip for context, and verifies every
// served TR is bit-identical to the in-process value. Acceptance targets:
// net warm median ≤ 5× the in-process warm median, and net warm throughput
// ≥ 10k predictions/s.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "harness.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

using namespace fgcs;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n % 2 ? samples[n / 2] : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "network serving overhead: loopback round-trip vs in-process");

  constexpr int kMachines = 20;
  constexpr int kDays = 28;
  constexpr int kReps = 200;
  const EstimatorConfig estimator = bench::bench_estimator_config();
  const std::vector<MachineTrace> fleet = bench::lab_fleet(kMachines, kDays);

  // One probe per machine: tomorrow, 09:00–11:00 — the batch a scheduler
  // sends per placement decision.
  std::vector<BatchRequest> requests;
  std::vector<net::WireRequestItem> items;
  for (const MachineTrace& trace : fleet) {
    const PredictionRequest request{
        .target_day = trace.day_count(),
        .window = {.start_of_day = 9 * kSecondsPerHour,
                   .length = 2 * kSecondsPerHour}};
    requests.push_back(BatchRequest{.trace = &trace, .request = request});
    items.push_back(net::WireRequestItem{.machine_key = trace.machine_id(),
                                         .request = request});
  }

  // In-process reference path, warmed then sampled.
  PredictionService inproc(ServiceConfig{.estimator = estimator});
  std::vector<Prediction> expected = inproc.predict_batch(requests);
  std::vector<double> inproc_samples;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    expected = inproc.predict_batch(requests);
    inproc_samples.push_back(seconds_since(t0));
  }
  const double inproc_s = median(inproc_samples);

  // Network path: loopback server over its own (initially cold) service.
  net::PredictionServer server(
      net::ServerConfig{},
      std::make_shared<PredictionService>(ServiceConfig{.estimator = estimator}));
  for (const MachineTrace& trace : fleet) server.add_trace(trace);
  server.start();
  net::ClientConfig client_config;
  client_config.port = server.port();
  net::PredictionClient client(client_config);

  const auto tc = std::chrono::steady_clock::now();
  std::vector<Prediction> served = client.predict_batch(items);
  const double cold_s = seconds_since(tc);

  std::vector<double> net_samples;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    served = client.predict_batch(items);
    net_samples.push_back(seconds_since(t0));
  }
  const double net_s = median(net_samples);

  bool identical = served.size() == expected.size();
  for (std::size_t i = 0; identical && i < served.size(); ++i)
    identical = same_bits(served[i].temporal_reliability,
                          expected[i].temporal_reliability);

  server.stop();  // join before reading the transfer counters
  const net::ServerStats stats = server.stats();

  Table table({"path", "batch", "median_ms", "per_pred_us", "preds_per_s"});
  const auto row = [&](const char* path, double seconds) {
    table.add_row({path, std::to_string(items.size()),
                   Table::num(1e3 * seconds),
                   Table::num(1e6 * seconds / static_cast<double>(items.size())),
                   Table::num(static_cast<double>(items.size()) / seconds, 0)});
  };
  row("inproc_warm", inproc_s);
  row("net_cold", cold_s);
  row("net_warm", net_s);
  table.print(std::cout);

  const double ratio = net_s / inproc_s;
  const double throughput = static_cast<double>(items.size()) / net_s;
  std::cout << "\nwire traffic: " << stats.frames << " frames, rx "
            << stats.rx_bytes << " B, tx " << stats.tx_bytes << " B ("
            << Table::num(static_cast<double>(stats.tx_bytes) /
                              static_cast<double>(stats.responses))
            << " B/response)\n";
  std::cout << "served TR bit-identical to in-process: "
            << (identical ? "yes" : "NO") << "\n";
  std::cout << "net/inproc warm ratio: " << Table::num(ratio, 1)
            << "x (target <= 5x): " << (ratio <= 5.0 ? "PASS" : "FAIL")
            << "\n";
  std::cout << "net warm throughput: " << Table::num(throughput, 0)
            << " predictions/s (target >= 10000): "
            << (throughput >= 10000.0 ? "PASS" : "FAIL") << "\n";
  return identical && ratio <= 5.0 && throughput >= 10000.0 ? 0 : 1;
}
