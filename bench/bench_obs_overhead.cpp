// Extension — observability cost contract (DESIGN.md §8).
//
// The metrics layer promises that recording into an instrument costs about
// one relaxed atomic RMW, and that *disarmed* cross-cutting hooks (failpoints
// with nothing armed, trace spans with tracing off) are within the same
// order. This bench measures per-operation nanoseconds for
//
//   atomic_fetch_add   raw std::atomic<uint64_t> relaxed add (the baseline)
//   counter_add        Counter::add()
//   gauge_set          Gauge::set()
//   gauge_update_max   Gauge::update_max() with a stale candidate (no CAS)
//   histogram_observe  Histogram::observe() on the default latency buckets
//   failpoint_off      FGCS_FAILPOINT with nothing armed anywhere
//   span_disabled      TraceSpan construct+finish, tracing off (2 clock reads)
//
// and gates the contract: counter_add, gauge_set, gauge_update_max, and
// failpoint_off must stay within 3× + 5 ns of the raw atomic baseline — a
// deliberately generous bound so shared-CI jitter can't flake it, while a
// mutex (≈15–40 ns uncontended) or any allocation would still fail loudly.
// histogram_observe (bucket search + CAS-loop sum) and span_disabled (two
// steady_clock reads) are reported but not gated.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>

#include "harness.hpp"
#include "util/failpoint.hpp"
#include "util/metrics.hpp"
#include "util/trace_span.hpp"

using namespace fgcs;

namespace {

constexpr std::size_t kIters = 2'000'000;

template <typename Fn>
double per_op_ns(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kIters; ++i) fn(i);
    const double ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count() /
                      static_cast<double>(kIters);
    best = std::min(best, ns);
  }
  return best;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "observability overhead: disarmed instrument cost vs raw atomic");
  Failpoints::instance().reset();  // nothing armed: measure the off path

  std::atomic<std::uint64_t> raw{0};
  const double baseline =
      per_op_ns([&](std::size_t) { raw.fetch_add(1, std::memory_order_relaxed); });

  Counter counter;
  const double counter_add = per_op_ns([&](std::size_t) { counter.add(); });

  Gauge gauge;
  const double gauge_set =
      per_op_ns([&](std::size_t i) { gauge.set(static_cast<double>(i)); });
  gauge.set(1e18);  // every candidate below is stale: no CAS taken
  const double gauge_update_max = per_op_ns(
      [&](std::size_t i) { gauge.update_max(static_cast<double>(i)); });

  Histogram histogram(Histogram::default_latency_bounds());
  const double histogram_observe = per_op_ns(
      [&](std::size_t i) { histogram.observe(1e-5 * double(i % 7)); });

  std::uint64_t fired = 0;
  const double failpoint_off = per_op_ns([&](std::size_t) {
    if (FGCS_FAILPOINT("bench.obs.disarmed")) ++fired;
  });

  Histogram span_hist(Histogram::default_latency_bounds());
  const double span_disabled = per_op_ns([&](std::size_t) {
    TraceSpan span("bench.obs.span", &span_hist);
    (void)span.finish();
  });

  Table table({"operation", "ns_per_op", "x_baseline"});
  const auto row = [&](const char* name, double ns) {
    table.add_row({name, Table::num(ns, 2), Table::num(ns / baseline, 1)});
  };
  row("atomic_fetch_add", baseline);
  row("counter_add", counter_add);
  row("gauge_set", gauge_set);
  row("gauge_update_max", gauge_update_max);
  row("histogram_observe", histogram_observe);
  row("failpoint_off", failpoint_off);
  row("span_disabled", span_disabled);
  table.print(std::cout);

  // Sanity: the loops really ran (and can't be optimized away).
  bool ok = counter.value() >= kIters && fired == 0 &&
            span_hist.count() >= kIters && raw.load() >= kIters;

  const double budget = 3.0 * baseline + 5.0;
  const auto gate = [&](const char* name, double ns) {
    const bool pass = ns <= budget;
    std::cout << name << ": " << Table::num(ns, 2) << " ns (budget "
              << Table::num(budget, 2) << " ns): " << (pass ? "PASS" : "FAIL")
              << "\n";
    ok = ok && pass;
  };
  std::cout << "\ncost contract (<= 3x atomic baseline + 5 ns):\n";
  gate("counter_add", counter_add);
  gate("gauge_set", gauge_set);
  gate("gauge_update_max", gauge_update_max);
  gate("failpoint_off", failpoint_off);
  return ok ? 0 : 1;
}
