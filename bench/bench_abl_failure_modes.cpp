// Ablation A7 — failure-mode attribution.
//
// The solver returns the absorption split across S3/S4/S5 (paper Eq. 2 sums
// them into TR, but the components are individually meaningful: a scheduler
// might checkpoint more aggressively against revocation than against CPU
// contention). This bench checks whether the predicted split matches the
// empirically observed first-failure modes on the test days.
#include <array>
#include <iostream>

#include "harness.hpp"

using namespace fgcs;

int main() {
  const std::vector<MachineTrace> fleet = bench::lab_fleet(5);
  const EstimatorConfig config = bench::bench_estimator_config();
  const AvailabilityPredictor predictor(config);
  const StateClassifier classifier(config.thresholds, bench::kPeriod);

  print_banner(std::cout,
               "A7 — predicted vs observed failure-mode split (weekdays)");
  Table table({"window", "pred S3:S4:S5", "obs S3:S4:S5", "dominant match"});

  std::size_t dominant_matches = 0, comparisons = 0;
  for (const SimTime start_hr : {8, 11, 14, 17, 20}) {
    for (const SimTime len_hr : {2, 6}) {
      const TimeWindow window{.start_of_day = start_hr * kSecondsPerHour,
                              .length = len_hr * kSecondsPerHour};
      std::array<double, 3> predicted{0, 0, 0};
      std::array<std::size_t, 3> observed{0, 0, 0};
      for (const MachineTrace& trace : fleet) {
        const auto target =
            bench::first_test_day(trace, 0.5, DayType::kWeekday);
        if (!target) continue;
        const Prediction p = predictor.predict(
            trace, {.target_day = *target, .window = window});
        for (std::size_t j = 0; j < 3; ++j) predicted[j] += p.p_absorb[j];

        for (const std::int64_t day :
             bench::test_days_of_type(trace, 0.5, DayType::kWeekday)) {
          if (!trace.window_in_range(day, window)) continue;
          const std::vector<State> states =
              classifier.classify_window(trace, day, window);
          if (states.empty() || is_failure(states.front())) continue;
          for (const State s : states) {
            if (!is_failure(s)) continue;
            ++observed[index_of(s) - index_of(State::kS3)];
            break;  // first failure mode only
          }
        }
      }
      const double pred_total = predicted[0] + predicted[1] + predicted[2];
      const std::size_t obs_total = observed[0] + observed[1] + observed[2];
      if (pred_total <= 0.0 || obs_total == 0) continue;

      auto share = [](double v, double total) {
        return Table::pct(v / total, 0);
      };
      const std::size_t pred_dom = static_cast<std::size_t>(
          std::max_element(predicted.begin(), predicted.end()) -
          predicted.begin());
      const std::size_t obs_dom = static_cast<std::size_t>(
          std::max_element(observed.begin(), observed.end()) - observed.begin());
      ++comparisons;
      if (pred_dom == obs_dom) ++dominant_matches;

      table.add_row(
          {window.describe(),
           share(predicted[0], pred_total) + ":" +
               share(predicted[1], pred_total) + ":" +
               share(predicted[2], pred_total),
           share(static_cast<double>(observed[0]), obs_total) + ":" +
               share(static_cast<double>(observed[1]), obs_total) + ":" +
               share(static_cast<double>(observed[2]), obs_total),
           pred_dom == obs_dom ? "yes" : "no"});
    }
  }
  table.print(std::cout);
  std::cout << "dominant failure mode matched in " << dominant_matches << "/"
            << comparisons << " windows\n"
            << "(the split is a by-product of Eq. 2 the paper sums away; "
               "S3 dominates on a student lab)\n";
  return 0;
}
