// Extension A9 — availability-target replication planning (Trua-style).
//
// Extension A6 fixed the replication degree k up front; the planner inverts
// the question: given a target availability A, pick the cheapest replica set
// whose joint availability 1 − Π(1 − TR_i) meets A, probing the whole fleet
// through the shared PredictionService. This bench sweeps A against fixed
// k ∈ {1,2,3} on both the student-lab fleet and the transient-VM preemption
// fleet, and enforces the dominance gate: whenever some fixed degree k meets
// A, the planner must also be feasible and never use more than k replicas
// (unit costs, so fewer replicas == cheaper). Exit is nonzero on any gate
// violation, which makes the bench usable as a regression check.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness.hpp"
#include "ishare/replication_planner.hpp"
#include "ishare/state_manager.hpp"

using namespace fgcs;

namespace {

struct BenchFleet {
  std::string name;
  std::vector<MachineTrace> traces;
  std::vector<Gateway> gateways;
  Registry registry;
  std::shared_ptr<PredictionService> service;
};

BenchFleet make_fleet(std::string name, std::vector<MachineTrace> traces) {
  BenchFleet fleet;
  fleet.name = std::move(name);
  fleet.traces = std::move(traces);
  fleet.service = std::make_shared<PredictionService>();
  fleet.gateways.reserve(fleet.traces.size());
  for (const MachineTrace& trace : fleet.traces)
    fleet.gateways.emplace_back(trace, Thresholds{},
                                bench::bench_estimator_config(),
                                fleet.service);
  for (Gateway& gateway : fleet.gateways) fleet.registry.publish(gateway);
  return fleet;
}

/// One batched fleet probe — the same request the ReplicatingScheduler
/// issues — returning planner candidates at unit cost.
std::vector<ReplicaCandidate> probe(const BenchFleet& fleet, SimTime submit,
                                    SimTime expected_wall) {
  const std::vector<Gateway*> gateways = fleet.registry.gateways();
  std::vector<BatchRequest> batch;
  batch.reserve(gateways.size());
  for (const Gateway* gateway : gateways) {
    const MachineTrace& history = gateway->state_manager().history();
    batch.push_back(BatchRequest{
        .trace = &history,
        .request =
            StateManager::job_request(history, submit, expected_wall)});
  }
  const std::vector<Prediction> predictions =
      fleet.service->predict_batch(batch);
  std::vector<ReplicaCandidate> candidates;
  candidates.reserve(gateways.size());
  for (std::size_t i = 0; i < gateways.size(); ++i)
    candidates.push_back(ReplicaCandidate{
        gateways[i]->machine_id(), predictions[i].temporal_reliability, 1.0});
  return candidates;
}

/// Joint availability of the k highest-TR candidates.
double top_k_availability(std::vector<ReplicaCandidate> candidates, int k) {
  std::sort(candidates.begin(), candidates.end(),
            [](const ReplicaCandidate& a, const ReplicaCandidate& b) {
              if (a.tr != b.tr) return a.tr > b.tr;
              return a.machine_id < b.machine_id;
            });
  candidates.resize(
      std::min<std::size_t>(static_cast<std::size_t>(k), candidates.size()));
  return joint_availability(candidates);
}

}  // namespace

int main() {
  WorkloadParams lab_params;
  lab_params.sampling_period = bench::kPeriod;
  lab_params.spike_rate_per_hour = 0.8;
  lab_params.spike_transient_frac = 0.4;
  lab_params.reboot_rate_per_day = 0.8;

  std::vector<BenchFleet> fleets;
  fleets.push_back(make_fleet(
      "lab", generate_fleet(lab_params, bench::kFleetSeed + 17, 6, 30, "rep")));
  fleets.push_back(make_fleet(
      "preemption", generate_preemption_fleet(PreemptionParams{},
                                              bench::kFleetSeed + 23, 6, 30,
                                              "vm")));

  print_banner(std::cout,
               "A9 — availability-target planner vs fixed replication degree");
  Table table({"workload", "target_A", "feasible", "mean_replicas",
               "mean_achieved", "min_fixed_k", "gate"});

  const double job_cpu_seconds = 2.0 * 3600.0;
  const SimTime expected_wall = static_cast<SimTime>(1.6 * job_cpu_seconds);
  int gate_violations = 0;

  for (const BenchFleet& fleet : fleets) {
    // Ten seed-pinned submissions across five days and two times of day —
    // the A6 grid, so the two benches describe the same workload.
    std::vector<std::vector<ReplicaCandidate>> probes;
    for (int day = 22; day < 27; ++day)
      for (const SimTime start_hr : {9, 14})
        probes.push_back(probe(
            fleet, day * kSecondsPerDay + start_hr * kSecondsPerHour,
            expected_wall));

    for (const double target : {0.90, 0.95, 0.99}) {
      PlannerConfig config;
      config.target_availability = target;
      config.max_replicas = 5;
      config.fallback_replicas = 3;

      int feasible = 0;
      int fixed_feasible_jobs = 0;
      RunningStats replicas_used, achieved, min_fixed;
      for (const std::vector<ReplicaCandidate>& candidates : probes) {
        const ReplicationPlan plan = plan_replicas(candidates, config);
        if (plan.feasible) ++feasible;
        replicas_used.add(static_cast<double>(plan.replicas.size()));
        achieved.add(plan.achieved_availability);

        // Smallest fixed degree in {1,2,3} that meets the target.
        int smallest_k = 0;
        for (int k = 1; k <= 3 && smallest_k == 0; ++k)
          if (top_k_availability(candidates, k) >= target) smallest_k = k;
        if (smallest_k == 0) continue;
        ++fixed_feasible_jobs;
        min_fixed.add(smallest_k);
        // Dominance gate: at unit cost the planner can never need more
        // replicas than the cheapest feasible fixed degree.
        if (!plan.feasible ||
            plan.replicas.size() > static_cast<std::size_t>(smallest_k))
          ++gate_violations;
      }

      table.add_row(
          {fleet.name, Table::num(target, 2),
           std::to_string(feasible) + "/" + std::to_string(probes.size()),
           Table::num(replicas_used.mean(), 2), Table::num(achieved.mean(), 4),
           min_fixed.empty()
               ? "n/a"
               : Table::num(min_fixed.mean(), 2) + " (" +
                     std::to_string(fixed_feasible_jobs) + " jobs)",
           gate_violations == 0 ? "ok" : "VIOLATED"});
    }
  }
  table.print(std::cout);
  std::cout << "(the planner spends replicas only when the target demands "
               "them — the mean set widens as A rises — and reports an "
               "explicit fallback when no set within max_replicas reaches "
               "A, as on the churny lab fleet at A=0.99)\n";
  if (gate_violations > 0) {
    std::printf("GATE FAILED: %d plan(s) used more replicas than a feasible "
                "fixed degree\n",
                gate_violations);
    return 1;
  }
  std::printf("GATE PASSED: planner never exceeded the cheapest feasible "
              "fixed degree on either workload\n");
  return 0;
}
