// Extension A6 — replicated execution on the FGCS fleet.
//
// The paper's client scheduler picks "the machine(s)" for a job (§5.1);
// running k replicas and taking the first completion is the classic
// redundancy policy for volunteer computing. This bench sweeps the
// replication factor and reports the response-time / CPU-cost trade,
// alongside the single-machine restart policy for context.
#include <iostream>

#include "harness.hpp"

using namespace fgcs;

int main() {
  WorkloadParams params;
  params.sampling_period = bench::kPeriod;
  params.spike_rate_per_hour = 0.8;
  params.spike_transient_frac = 0.4;
  params.reboot_rate_per_day = 0.8;
  const std::vector<MachineTrace> fleet =
      generate_fleet(params, bench::kFleetSeed + 17, 6, 30, "rep");

  std::vector<Gateway> gateways;
  gateways.reserve(fleet.size());
  Thresholds thresholds;
  for (const MachineTrace& trace : fleet)
    gateways.emplace_back(trace, thresholds, bench::bench_estimator_config());
  Registry registry;
  for (Gateway& g : gateways) registry.publish(g);

  print_banner(std::cout,
               "A6 — replication factor vs response time (3-CPU-hour jobs)");
  Table table({"policy", "completed", "mean_response_hr", "mean_cpu_cost_hr",
               "replica_failures"});

  const GuestJobSpec job{.job_id = "job", .cpu_seconds = 3.0 * 3600.0,
                         .mem_mb = 100};

  // Baseline: single machine with restarts (the paper's §5.1 policy).
  {
    SchedulerConfig config;
    config.retry_delay = 300;
    const JobScheduler scheduler(registry, config);
    RunningStats response;
    int completed = 0, total = 0;
    for (int day = 22; day < 27; ++day) {
      for (const SimTime start_hr : {9, 14}) {
        const SimTime submit = day * kSecondsPerDay + start_hr * kSecondsPerHour;
        const JobOutcome outcome =
            scheduler.run_job(job, submit, submit + 2 * kSecondsPerDay);
        ++total;
        if (outcome.completed) {
          ++completed;
          response.add(static_cast<double>(outcome.response_time()) /
                       kSecondsPerHour);
        }
      }
    }
    table.add_row({"restart (k=1)",
                   std::to_string(completed) + "/" + std::to_string(total),
                   response.empty() ? "n/a" : Table::num(response.mean(), 2),
                   Table::num(job.cpu_seconds / 3600.0, 2), "-"});
  }

  for (const int replicas : {1, 2, 3, 4}) {
    const ReplicatingScheduler scheduler(registry, replicas);
    RunningStats response, cpu_cost, failures;
    int completed = 0, total = 0;
    for (int day = 22; day < 27; ++day) {
      for (const SimTime start_hr : {9, 14}) {
        const SimTime submit = day * kSecondsPerDay + start_hr * kSecondsPerHour;
        const ReplicatedOutcome outcome =
            scheduler.run_job(job, submit, submit + 2 * kSecondsPerDay);
        ++total;
        if (outcome.completed) {
          ++completed;
          response.add(static_cast<double>(outcome.response_time()) /
                       kSecondsPerHour);
          cpu_cost.add(outcome.total_cpu_spent / 3600.0);
          failures.add(outcome.replicas_failed);
        }
      }
    }
    table.add_row({"replicate k=" + std::to_string(replicas),
                   std::to_string(completed) + "/" + std::to_string(total),
                   response.empty() ? "n/a" : Table::num(response.mean(), 2),
                   cpu_cost.empty() ? "n/a" : Table::num(cpu_cost.mean(), 2),
                   failures.empty() ? "n/a" : Table::num(failures.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "(replication buys completion probability and latency with "
               "redundant CPU; the TR ranking decides *which* machines host "
               "the replicas)\n";
  return 0;
}
