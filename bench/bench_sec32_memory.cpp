// §3.2.2 — the CPU + memory contention study: SPEC CPU2000-like guests
// (29–193 MB working sets) against Musbus-like interactive host workloads
// (8–67 % CPU, 53–213 MB) on a 384 MB machine.
//
// Reproduced observations:
//   1. thrashing happens iff the combined working set exceeds physical
//      memory, and renicing the guest does not prevent it;
//   2. with sufficient free memory, the outcome reduces to pure CPU
//      contention, where the Th1/Th2 structure applies.
#include <iostream>

#include "harness.hpp"

using namespace fgcs;

int main() {
  const auto& hosts = musbus_host_catalog();
  const auto& guests = spec_guest_catalog();

  print_banner(std::cout,
               "Sec 3.2.2 — memory contention matrix (384 MB machine)");
  Table table({"host_workload", "host(cpu,mem)", "guest", "guest_ws_mb",
               "thrash", "reduction_nice0", "reduction_nice19"});

  // A representative diagonal plus the extremes, as the paper tabulates a
  // guest set against a host workload sweep.
  for (const auto& host : hosts) {
    for (const auto& guest : {guests.front(), guests[guests.size() / 2],
                              guests.back()}) {
      MemoryContentionSetup setup;
      setup.host_cpu_duty = host.cpu_duty;
      setup.host_mem_mb = host.mem_mb;
      setup.guest_mem_mb = guest.working_set_mb;
      const MemoryContentionResult r =
          run_memory_contention(setup, {}, bench::kFleetSeed);
      table.add_row({host.name,
                     Table::pct(host.cpu_duty, 0) + "," +
                         std::to_string(host.mem_mb) + "MB",
                     guest.name, std::to_string(guest.working_set_mb),
                     r.thrashing ? "yes" : "no",
                     Table::pct(r.reduction_nice0, 1),
                     Table::pct(r.reduction_nice19, 1)});
    }
  }
  table.print(std::cout);

  // Observation 1: priority cannot rescue a thrashing machine.
  print_banner(std::cout, "Observation: thrash is priority-independent");
  Table obs({"setup", "overcommit", "reduction_nice0", "reduction_nice19"});
  MemoryContentionSetup worst;
  worst.host_cpu_duty = 0.3;
  worst.host_mem_mb = 213;
  worst.guest_mem_mb = 193;
  const MemoryContentionResult r =
      run_memory_contention(worst, {}, bench::kFleetSeed);
  obs.add_row({"213MB host + 193MB guest", Table::num(r.overcommit_ratio, 2),
               Table::pct(r.reduction_nice0, 1),
               Table::pct(r.reduction_nice19, 1)});
  obs.print(std::cout);
  std::cout << "(paper: changing CPU priority does little to prevent "
               "thrashing; memory and CPU contention are separable)\n";
  return 0;
}
