// Extension — streaming ingest estimator cost (DESIGN.md §9).
//
// The ingest path closes one day at a time, and the IncrementalEstimator
// promises each close costs O(changed-day): add the newest eligible day's
// sojourns, subtract the retired one's. The from-scratch path re-selects the
// training days and re-classifies/re-counts every one of them per close.
// This bench measures both per day-close, steady-state, over a 14-day
// sliding retention window (the paper's two-week operating point), and gates
// the PR's claim: the append-update must be at least 10x faster than the
// from-scratch re-count at that history depth. Normalizing counts into an
// SMP model (build_model) is charged to neither leg — both designs pay it
// once per *served prediction*, on demand, not per close — but its cost is
// reported alongside for context, and the final-position models are checked
// bit-identical so the speedup cannot come from computing something
// different.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <vector>

#include "harness.hpp"

using namespace fgcs;

namespace {

constexpr std::int64_t kHistoryDays = 14;  // the sliding retention window
constexpr std::int64_t kSlideSteps = 128;  // distinct steady-state day closes
constexpr int kReps = 3;                   // best-of reps absorbs CI jitter

/// First day index at/after the slice end whose type matches — the
/// prediction target a from-scratch estimate would be anchored on.
std::int64_t matching_target(const MachineTrace& trace, DayType type) {
  for (std::int64_t d = trace.day_count(); d < trace.day_count() + 7; ++d)
    if (trace.day_type(d) == type) return d;
  return trace.day_count();
}

bool models_bit_identical(const SmpModel& a, const SmpModel& b) {
  if (a.horizon() != b.horizon()) return false;
  const auto same = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  for (std::size_t from = 0; from < 2; ++from) {
    if (!same(a.exit_mass(from), b.exit_mass(from))) return false;
    for (std::size_t to = 0; to < kStateCount; ++to) {
      if (!same(a.q(from, to), b.q(from, to))) return false;
      for (std::size_t hold = 1; hold <= b.horizon(); ++hold)
        if (!same(a.h(from, to, hold), b.h(from, to, hold))) return false;
    }
  }
  return true;
}

/// Folds counts into a checksum so neither timed loop can be elided.
/// censored() is an O(1) array read — the checksum must not add O(horizon)
/// work of its own to the legs it guards.
std::uint64_t counts_checksum(const TransitionCounts& counts) {
  return counts.censored(State::kS1) + counts.censored(State::kS2);
}

/// Best-of-kReps nanoseconds per slide step for one timed sweep.
template <typename Sweep>
double per_close_ns(Sweep&& sweep) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    sweep();
    const double ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count() /
                      static_cast<double>(kSlideSteps);
    best = std::min(best, ns);
  }
  return best;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "ingest estimator: incremental append-update vs from-scratch "
               "re-count, 14-day sliding history");

  // One long trace; each slide step k sees the 14-day retention slice
  // [k, k+14), exactly what the TraceStore serves after closing day k+13.
  WorkloadParams params;
  params.sampling_period = 60;
  TraceGenerator generator(params, bench::kFleetSeed);
  const MachineTrace full =
      generator.generate("ingest", kHistoryDays + kSlideSteps);

  std::vector<MachineTrace> slices;
  slices.reserve(static_cast<std::size_t>(kSlideSteps) + 1);
  for (std::int64_t k = 0; k <= kSlideSteps; ++k)
    slices.push_back(full.slice(k, k + kHistoryDays));

  EstimatorConfig config;  // paper defaults: 10 most recent same-type days
  const TimeWindow window{.start_of_day = 9 * kSecondsPerHour,
                          .length = 8 * kSecondsPerHour};
  const DayType type = DayType::kWeekday;
  const SmpEstimator scratch(config);
  IncrementalEstimator incremental(config, window, type,
                                   params.sampling_period);

  std::uint64_t checksum = 0;

  // From-scratch: re-select the training days and re-classify/re-count all
  // of them, the way a stateless estimator must after every day close.
  const double scratch_ns = per_close_ns([&] {
    for (std::int64_t k = 1; k <= kSlideSteps; ++k) {
      const MachineTrace& slice = slices[static_cast<std::size_t>(k)];
      const std::vector<std::int64_t> days =
          scratch.training_days_for(slice, matching_target(slice, type),
                                    window);
      checksum += counts_checksum(scratch.count_transitions(slice, days,
                                                            window));
    }
  });

  // Incremental: the actual ingest work per close — retire the day sliding
  // out of retention, classify and count only the newly closed one. Day ids
  // only move forward, so each rep reseeds via rebuild() outside the timer.
  double incremental_ns = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    incremental.rebuild(slices[0], /*first_day_id=*/0);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t k = 1; k <= kSlideSteps; ++k) {
      incremental.on_day_retired(k - 1);
      incremental.on_day_appended(slices[static_cast<std::size_t>(k)],
                                  /*first_day_id=*/k);
      checksum += counts_checksum(incremental.counts());
    }
    const double ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count() /
                      static_cast<double>(kSlideSteps);
    incremental_ns = std::min(incremental_ns, ns);
  }

  // Shared on-demand cost both designs pay per served prediction.
  const TransitionCounts final_counts = incremental.counts();
  const double build_ns = per_close_ns([&] {
    for (std::int64_t k = 1; k <= kSlideSteps; ++k) {
      const SmpModel model = scratch.build_model(final_counts);
      checksum += static_cast<std::uint64_t>(model.horizon());
    }
  });

  // Bit-identity at the final position: same counts, same doubles.
  const MachineTrace& last = slices.back();
  const bool identical = models_bit_identical(
      incremental.model(),
      scratch.estimate(last, matching_target(last, type), window));

  const double speedup = scratch_ns / incremental_ns;
  Table table({"per_day_close_work", "us_per_close", "speedup"});
  table.add_row({"from_scratch_recount", Table::num(scratch_ns / 1e3, 2),
                 Table::num(1.0, 1)});
  table.add_row({"incremental_append_update",
                 Table::num(incremental_ns / 1e3, 2), Table::num(speedup, 1)});
  table.add_row({"build_model (on demand, shared)",
                 Table::num(build_ns / 1e3, 2), "-"});
  table.print(std::cout);

  std::cout << "\nfinal-position model bit-identical: "
            << (identical ? "PASS" : "FAIL") << "\n";
  const bool fast_enough = speedup >= 10.0;
  std::cout << "append-update >= 10x from-scratch at " << kHistoryDays
            << "-day history: " << (fast_enough ? "PASS" : "FAIL")
            << " (checksum " << checksum << ")\n";
  return (identical && fast_enough) ? 0 : 1;
}
