// Fig. 5 — relative error of the predicted temporal reliability vs window
// length, weekdays (a) and weekends (b).
//
// As in the paper: traces are split 50/50 into training and test halves, the
// SMP parameters come from the training side, predictions are evaluated on
// time windows of length 1–10 h with start times sweeping 0:00–23:00 in 1 h
// steps, and each point reports the average / min / max relative error of
// the predicted TR against the empirical TR from the test days.
//
// Paper reference: average error grows with window length but stays below
// 13.5 % (accuracy > 86.5 %); the worst case stays below 26.7 %.
#include <iostream>

#include "harness.hpp"

using namespace fgcs;

int main() {
  const int kMachines = 5;
  const double kTrainingFraction = 0.5;
  const std::vector<MachineTrace> fleet = bench::lab_fleet(kMachines);
  const EstimatorConfig config = bench::bench_estimator_config();

  for (const DayType type : {DayType::kWeekday, DayType::kWeekend}) {
    print_banner(std::cout,
                 std::string("Fig. 5 — relative error of predicted TR (") +
                     to_string(type) + "s)");
    Table table({"window_len_hr", "avg_err", "min_err", "max_err",
                 "avg_accuracy", "windows"});
    RunningStats overall;
    for (SimTime len_hr = 1; len_hr <= 10; ++len_hr) {
      RunningStats errors;
      for (SimTime start_hr = 0; start_hr < 24; ++start_hr) {
        const TimeWindow window{.start_of_day = start_hr * kSecondsPerHour,
                                .length = len_hr * kSecondsPerHour};
        for (const MachineTrace& trace : fleet) {
          const auto eval = bench::evaluate_smp_window(
              trace, kTrainingFraction, type, window, config);
          if (eval) errors.add(eval->error);
        }
      }
      if (errors.empty()) continue;
      table.add_row({std::to_string(len_hr), Table::pct(errors.mean()),
                     Table::pct(errors.min()), Table::pct(errors.max()),
                     Table::pct(1.0 - errors.mean()),
                     std::to_string(errors.count())});
      overall.merge(errors);
    }
    table.print(std::cout);
    std::cout << "overall: avg error " << Table::pct(overall.mean())
              << ", max error " << Table::pct(overall.max())
              << "  (paper: avg <= 13.5%, max <= 26.7%)\n";
  }
  return 0;
}
