// Ablation A1 — discretization interval d.
//
// The paper (§4.1) argues a discrete-time SMP trades accuracy for
// computational efficiency and that the loss "can be compensated by tuning
// the time unit of discrete time intervals". This ablation quantifies the
// trade-off: prediction accuracy and solve cost at d ∈ {6, 12, 30, 60} s on
// identical workloads (the generator emits at 6 s; coarser logs are obtained
// by subsampling the same days).
#include <chrono>
#include <iostream>

#include "harness.hpp"

using namespace fgcs;

namespace {

MachineTrace subsample(const MachineTrace& fine, SimTime coarse_period) {
  const SimTime fine_period = fine.sampling_period();
  const auto stride = static_cast<std::size_t>(coarse_period / fine_period);
  MachineTrace coarse(fine.machine_id(), fine.calendar(), coarse_period,
                      fine.total_mem_mb());
  for (std::int64_t d = 0; d < fine.day_count(); ++d) {
    std::vector<ResourceSample> day;
    day.reserve(coarse.samples_per_day());
    for (std::size_t i = 0; i < fine.samples_per_day(); i += stride)
      day.push_back(fine.at(d, i));
    coarse.append_day(std::move(day));
  }
  return coarse;
}

}  // namespace

int main() {
  WorkloadParams params;
  params.sampling_period = 6;  // native paper rate
  const MachineTrace fine =
      TraceGenerator(params, bench::kFleetSeed).generate("abl", 35);

  print_banner(std::cout, "A1 — accuracy and cost vs discretization interval");
  Table table({"d_seconds", "avg_err", "windows", "solve_ms(4h window)"});

  for (const SimTime d : {6, 12, 30, 60}) {
    const MachineTrace trace = d == 6 ? fine : subsample(fine, d);
    EstimatorConfig config = bench::bench_estimator_config();
    const AvailabilityPredictor predictor(config);

    RunningStats errors;
    for (const SimTime start_hr : {8, 12, 16, 20}) {
      for (const SimTime len_hr : {1, 2, 4}) {
        const TimeWindow window{.start_of_day = start_hr * kSecondsPerHour,
                                .length = len_hr * kSecondsPerHour};
        const auto eval = bench::evaluate_smp_window(trace, 0.5,
                                                     DayType::kWeekday, window,
                                                     config);
        if (eval) errors.add(eval->error);
      }
    }

    // Solve cost for a 4 h window at this d.
    const TimeWindow probe{.start_of_day = 10 * kSecondsPerHour,
                           .length = 4 * kSecondsPerHour};
    const auto t0 = std::chrono::steady_clock::now();
    const Prediction p = predictor.predict(
        trace, {.target_day = trace.day_count() - 1, .window = probe});
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    (void)p;

    table.add_row({std::to_string(d),
                   errors.empty() ? "n/a" : Table::pct(errors.mean()),
                   std::to_string(errors.count()), Table::num(ms, 2)});
  }
  table.print(std::cout);
  std::cout << "(coarser d cuts the O((T/d)^2) solve cost quadratically with "
               "little accuracy impact — the paper's §4.1 tuning claim)\n";
  return 0;
}
