// Extension A4 — the paper's proposed future testbed (§8): enterprise
// desktop resources. Same Fig. 5-style accuracy sweep, different workload
// pattern (sharp 9-to-5 weekdays, near-idle weekends).
#include <iostream>

#include "harness.hpp"

using namespace fgcs;

int main() {
  WorkloadParams params;
  params.sampling_period = bench::kPeriod;
  params.profile = DiurnalProfile::enterprise_desktop();
  params.reboot_rate_per_day = 0.4;        // fewer console reboots than a lab
  params.session_rate_per_hour = 6.0;
  const std::vector<MachineTrace> fleet =
      generate_fleet(params, bench::kFleetSeed + 5, 4, bench::kTraceDays,
                     "desk");
  const EstimatorConfig config = bench::bench_estimator_config();

  for (const DayType type : {DayType::kWeekday, DayType::kWeekend}) {
    print_banner(std::cout,
                 std::string("A4 — enterprise desktops, prediction error (") +
                     to_string(type) + "s)");
    Table table({"window_len_hr", "avg_err", "max_err", "windows"});
    for (SimTime len_hr = 1; len_hr <= 10; ++len_hr) {
      RunningStats errors;
      for (SimTime start_hr = 0; start_hr < 24; start_hr += 2) {
        const TimeWindow window{.start_of_day = start_hr * kSecondsPerHour,
                                .length = len_hr * kSecondsPerHour};
        for (const MachineTrace& trace : fleet) {
          const auto eval =
              bench::evaluate_smp_window(trace, 0.5, type, window, config);
          if (eval) errors.add(eval->error);
        }
      }
      if (errors.empty()) continue;
      table.add_row({std::to_string(len_hr), Table::pct(errors.mean()),
                     Table::pct(errors.max()), std::to_string(errors.count())});
    }
    table.print(std::cout);
  }
  std::cout << "(paper §8 expectation: the method transfers because the "
               "pattern-repeatability assumption still holds)\n";
  return 0;
}
