#include "harness.hpp"

namespace fgcs::bench {

std::vector<MachineTrace> lab_fleet(int machines, int days, SimTime period,
                                    double drift_per_day, std::uint64_t seed) {
  WorkloadParams params;
  params.sampling_period = period;
  params.drift_per_day = drift_per_day;
  return generate_fleet(params, seed, machines, days, "lab");
}

std::vector<std::int64_t> test_days_of_type(const MachineTrace& trace,
                                            double training_fraction,
                                            DayType type) {
  const auto split = static_cast<std::int64_t>(
      training_fraction * static_cast<double>(trace.day_count()));
  return trace.days_of_type(type, split, trace.day_count());
}

std::optional<std::int64_t> first_test_day(const MachineTrace& trace,
                                           double training_fraction,
                                           DayType type) {
  const std::vector<std::int64_t> days =
      test_days_of_type(trace, training_fraction, type);
  if (days.empty()) return std::nullopt;
  return days.front();
}

EstimatorConfig bench_estimator_config() {
  EstimatorConfig config;
  config.training_days = 15;  // most recent N same-type days
  return config;
}

std::optional<WindowEvaluation> evaluate_smp_window(
    const MachineTrace& trace, double training_fraction, DayType type,
    const TimeWindow& window, const EstimatorConfig& config) {
  const auto target = first_test_day(trace, training_fraction, type);
  if (!target) return std::nullopt;
  const std::vector<std::int64_t> days =
      test_days_of_type(trace, training_fraction, type);

  const AvailabilityPredictor predictor(config);
  Prediction prediction;
  try {
    prediction = predictor.predict(trace, {.target_day = *target, .window = window});
  } catch (const PreconditionError&) {
    return std::nullopt;  // e.g. wrapping window past the trace end
  }

  const StateClassifier classifier(config.thresholds, trace.sampling_period());
  const EmpiricalTr emp = empirical_tr(trace, days, window, classifier);
  if (!emp.tr || *emp.tr <= 0.0) return std::nullopt;

  WindowEvaluation eval;
  eval.predicted_tr = prediction.temporal_reliability;
  eval.empirical_tr = *emp.tr;
  eval.error = relative_error(eval.predicted_tr, eval.empirical_tr);
  return eval;
}

std::optional<WindowEvaluation> evaluate_ts_window(
    const MachineTrace& trace, double training_fraction, DayType type,
    const TimeWindow& window, TimeSeriesModel& model,
    const Thresholds& thresholds) {
  const std::vector<std::int64_t> days =
      test_days_of_type(trace, training_fraction, type);
  if (days.empty()) return std::nullopt;

  const StateClassifier classifier(thresholds, trace.sampling_period());
  const TsTrResult ts = predict_tr_time_series(trace, days, window, model, classifier);
  const EmpiricalTr emp = empirical_tr(trace, days, window, classifier);
  if (!ts.tr || !emp.tr || *emp.tr <= 0.0) return std::nullopt;

  WindowEvaluation eval;
  eval.predicted_tr = *ts.tr;
  eval.empirical_tr = *emp.tr;
  eval.error = relative_error(eval.predicted_tr, eval.empirical_tr);
  return eval;
}

}  // namespace fgcs::bench
