// Fig. 6 — relative prediction errors for different training:test size
// ratios (weekday data).
//
// The paper splits the trace at ratios 1:9 … 9:1, runs the prediction over
// the same 240 windows (24 start times × 10 lengths), and reports the
// max-average error (average per window length, then max over lengths) and
// the overall maximum. The interesting result is a sweet spot (6:4 on the
// paper's dataset): small training sets starve the estimator, very large
// ones are stale — our generator reproduces staleness with a semester
// drift in the host activity.
#include <iostream>

#include "harness.hpp"

using namespace fgcs;

int main() {
  const int kMachines = 3;
  // Semester drift: activity slowly rises toward finals, so months-old
  // training days misrepresent the present (the Fig. 6 staleness mechanism).
  const std::vector<MachineTrace> fleet =
      bench::lab_fleet(kMachines, bench::kTraceDays, bench::kPeriod,
                       /*drift_per_day=*/0.006);

  EstimatorConfig config = bench::bench_estimator_config();
  config.training_days = 0;  // use the whole training side: its size is the
                             // variable under study

  print_banner(std::cout,
               "Fig. 6 — error vs training:test ratio (weekdays, 240 windows)");
  Table table({"ratio(train:test)", "max_avg_err", "max_err", "windows"});

  for (int train = 1; train <= 9; ++train) {
    const double fraction = train / 10.0;
    RunningStats per_length_avg_max;  // max over lengths of per-length average
    RunningStats all_errors;
    double max_avg = 0.0;
    for (SimTime len_hr = 1; len_hr <= 10; ++len_hr) {
      RunningStats per_length;
      for (SimTime start_hr = 0; start_hr < 24; ++start_hr) {
        const TimeWindow window{.start_of_day = start_hr * kSecondsPerHour,
                                .length = len_hr * kSecondsPerHour};
        for (const MachineTrace& trace : fleet) {
          const auto eval = bench::evaluate_smp_window(
              trace, fraction, DayType::kWeekday, window, config);
          if (eval) {
            per_length.add(eval->error);
            all_errors.add(eval->error);
          }
        }
      }
      if (!per_length.empty() && per_length.mean() > max_avg)
        max_avg = per_length.mean();
    }
    if (all_errors.empty()) continue;
    table.add_row({std::to_string(train) + ":" + std::to_string(10 - train),
                   Table::pct(max_avg), Table::pct(all_errors.max()),
                   std::to_string(all_errors.count())});
  }
  table.print(std::cout);
  std::cout << "(paper: sweet spot at 6:4 — extremes on both sides are worse)\n";
  return 0;
}
