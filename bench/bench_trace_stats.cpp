// §6.1 — testbed trace statistics.
//
// The paper monitored a Purdue student lab for 3 months (≈1800 machine-days)
// and reports 405–453 unavailability occurrences per machine over that
// period, plus a monitoring overhead below 1 % CPU and memory. This bench
// regenerates the same summary from the synthetic fleet so the substitution
// is auditable.
#include <algorithm>
#include <cstdint>
#include <iostream>

#include "harness.hpp"

using namespace fgcs;

int main() {
  const int kMachines = 20;
  const int kDays = 91;
  // Paper-rate sampling (6 s) would cost 20×91×14400 samples; occurrence
  // counting only needs the state sequence, for which 60 s sampling is
  // equivalent up to sub-minute episodes (those are transient by definition).
  const std::vector<MachineTrace> fleet =
      bench::lab_fleet(kMachines, kDays, bench::kPeriod);

  EstimatorConfig config = bench::bench_estimator_config();
  const StateClassifier classifier(config.thresholds, bench::kPeriod);

  print_banner(std::cout, "Sec 6.1 — per-machine unavailability occurrences "
                          "over 3 months");
  Table table({"machine", "S3(cpu)", "S4(memory)", "S5(revocation)", "total",
               "per_day", "uptime", "mean_load"});
  std::size_t fleet_min = SIZE_MAX, fleet_max = 0, fleet_total = 0;
  for (const MachineTrace& trace : fleet) {
    const UnavailabilityStats stats = count_unavailability(trace, classifier);
    fleet_min = std::min(fleet_min, stats.total());
    fleet_max = std::max(fleet_max, stats.total());
    fleet_total += stats.total();
    table.add_row({trace.machine_id(), std::to_string(stats.cpu_contention),
                   std::to_string(stats.memory_thrash),
                   std::to_string(stats.revocation),
                   std::to_string(stats.total()),
                   Table::num(static_cast<double>(stats.total()) / kDays, 1),
                   Table::pct(trace.uptime_fraction(), 2),
                   Table::pct(trace.mean_load(), 1)});
  }
  table.print(std::cout);

  print_banner(std::cout, "Fleet summary");
  Table summary({"metric", "measured", "paper"});
  summary.add_row({"machine-days",
                   std::to_string(static_cast<int>(fleet.size()) * kDays),
                   "~1800"});
  summary.add_row({"occurrences/machine (min)", std::to_string(fleet_min),
                   "405"});
  summary.add_row({"occurrences/machine (max)", std::to_string(fleet_max),
                   "453"});
  summary.add_row(
      {"occurrences/machine (mean)",
       Table::num(static_cast<double>(fleet_total) / fleet.size(), 1),
       "405-453"});
  // Monitoring overhead model: one top/vmstat invocation (~10 ms) per 6 s.
  summary.add_row({"monitor overhead (CPU)", Table::pct(0.010 / 6.0, 2),
                   "< 1%"});
  summary.print(std::cout);

  // The paper's premise (§4.2, [19]): load patterns repeat across recent
  // same-type days. Measure it on the synthetic fleet.
  print_banner(std::cout, "Pattern repeatability (hourly-profile correlation)");
  Table repeat({"machine", "weekday consec", "weekday week-apart",
                "weekend consec"});
  for (std::size_t m = 0; m < 5; ++m) {
    const MachineTrace& trace = fleet[m];
    const PatternRepeatability wd =
        measure_repeatability(trace, DayType::kWeekday);
    const PatternRepeatability we =
        measure_repeatability(trace, DayType::kWeekend);
    repeat.add_row({trace.machine_id(), Table::num(wd.consecutive_day_correlation, 3),
                    Table::num(wd.week_apart_correlation, 3),
                    Table::num(we.consecutive_day_correlation, 3)});
  }
  repeat.print(std::cout);
  std::cout << "(positive correlations confirm the same-clock-time training "
               "rule has signal to exploit)\n";
  return 0;
}
