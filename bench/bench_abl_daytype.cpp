// Ablation A8 — the weekday/weekend training split (paper §4.2).
//
// The paper trains on "the most recent N weekdays (weekends)" matching the
// target day's type. This ablation quantifies that design choice: predicting
// weekend windows from (a) same-type days per the paper, (b) all recent days
// regardless of type, and (c) opposite-type days only.
#include <iostream>

#include "harness.hpp"

using namespace fgcs;

namespace {

/// TR prediction with an explicit training-day list.
double predict_with_days(const MachineTrace& trace,
                         std::span<const std::int64_t> days,
                         const TimeWindow& window,
                         const EstimatorConfig& config) {
  const SmpEstimator estimator(config);
  const TransitionCounts counts =
      estimator.count_transitions(trace, days, window);
  const SmpModel model = estimator.build_model(counts);
  const SparseTrSolver solver(model);
  const State init = estimator.majority_initial_state(trace, days, window);
  const std::size_t steps = window.steps(trace.sampling_period());
  return solver.solve(is_available(init) ? init : State::kS1, steps)
      .temporal_reliability;
}

std::vector<std::int64_t> last_n(std::vector<std::int64_t> days, std::size_t n) {
  if (days.size() > n)
    days.erase(days.begin(), days.end() - static_cast<std::ptrdiff_t>(n));
  return days;
}

}  // namespace

int main() {
  const std::vector<MachineTrace> fleet = bench::lab_fleet(4);
  const EstimatorConfig config = bench::bench_estimator_config();
  const StateClassifier classifier(config.thresholds, bench::kPeriod);

  for (const DayType target_type : {DayType::kWeekend, DayType::kWeekday}) {
    const DayType other = target_type == DayType::kWeekday
                              ? DayType::kWeekend
                              : DayType::kWeekday;
    print_banner(std::cout, std::string("A8 — predicting ") +
                                to_string(target_type) +
                                " windows from different training pools");
    Table table({"training pool", "avg_err", "max_err", "windows"});

    struct Pool {
      const char* label;
      DayType type;
      bool any_type;
    };
    const Pool pools[] = {
        {"same-type days (paper rule)", target_type, false},
        {"any recent days", target_type, true},
        {"opposite-type days", other, false},
    };
    for (const Pool& pool : pools) {
      RunningStats errors;
      for (const SimTime start_hr : {6, 10, 14, 18}) {
        for (const SimTime len_hr : {2, 4, 8}) {
          const TimeWindow window{.start_of_day = start_hr * kSecondsPerHour,
                                  .length = len_hr * kSecondsPerHour};
          for (const MachineTrace& trace : fleet) {
            const auto split = trace.day_count() / 2;
            const auto test_days =
                trace.days_of_type(target_type, split, trace.day_count());
            if (test_days.empty()) continue;

            std::vector<std::int64_t> training;
            if (pool.any_type) {
              for (std::int64_t d = 0; d < split; ++d)
                if (trace.window_in_range(d, window)) training.push_back(d);
            } else {
              for (const std::int64_t d :
                   trace.days_of_type(pool.type, 0, split))
                if (trace.window_in_range(d, window)) training.push_back(d);
            }
            training = last_n(std::move(training), config.training_days);
            if (training.empty()) continue;

            const double predicted =
                predict_with_days(trace, training, window, config);
            const EmpiricalTr emp =
                empirical_tr(trace, test_days, window, classifier);
            if (!emp.tr || *emp.tr <= 0.0) continue;
            errors.add(relative_error(predicted, *emp.tr));
          }
        }
      }
      if (errors.empty()) continue;
      table.add_row({pool.label, Table::pct(errors.mean()),
                     Table::pct(errors.max()), std::to_string(errors.count())});
    }
    table.print(std::cout);
  }
  std::cout << "(the paper's same-type rule should win whenever weekday and "
               "weekend patterns differ — which is the testbed's defining "
               "feature)\n";
  return 0;
}
