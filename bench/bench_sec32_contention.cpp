// §3.2.1 — the CPU contention study: reduction rate of host CPU usage as a
// function of the isolated host load L_H, for host-group sizes 1–5 and a
// CPU-bound guest at priority 0 and 19.
//
// This regenerates the empirical basis for the two thresholds:
//   Th1 — lowest L_H where a default-priority (nice 0) guest causes
//         noticeable (>5 %) host slowdown (paper testbed: 20 %),
//   Th2 — lowest L_H where even a reniced (nice 19) guest does
//         (paper testbed: 60 %),
// and the saturation of the guest's achievable CPU share with growing host
// group size.
#include <iostream>
#include <optional>

#include "harness.hpp"

using namespace fgcs;

int main() {
  const std::vector<double> loads{0.10, 0.20, 0.30, 0.40, 0.50,
                                  0.60, 0.70, 0.80, 0.90, 1.00};
  const double kSeconds = 300.0;

  for (const int nice : {0, 19}) {
    print_banner(std::cout, "Sec 3.2.1 — host CPU usage reduction, guest at "
                            "nice " + std::to_string(nice));
    std::vector<std::string> headers{"L_H"};
    for (int size = 1; size <= 5; ++size)
      headers.push_back("group=" + std::to_string(size));
    Table table(headers);

    for (const double load : loads) {
      std::vector<std::string> row{Table::pct(load, 0)};
      for (int size = 1; size <= 5; ++size) {
        ContentionStudy study({}, bench::kFleetSeed + size);
        const ContentionResult r = study.run(load, size, nice, kSeconds);
        row.push_back(Table::pct(r.reduction_rate, 1));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }

  print_banner(std::cout, "Derived thresholds (group size 1, slowdown > 5%)");
  Table thresholds({"threshold", "measured", "paper"});
  ContentionStudy study_th1({}, bench::kFleetSeed);
  const std::optional<double> th1 =
      study_th1.find_threshold(loads, 1, 0, 0.05, kSeconds);
  ContentionStudy study_th2({}, bench::kFleetSeed);
  const std::optional<double> th2 =
      study_th2.find_threshold(loads, 1, 19, 0.05, kSeconds);
  thresholds.add_row({"Th1 (renice the guest)",
                      th1 ? Table::pct(*th1, 0) : "none", "20%"});
  thresholds.add_row({"Th2 (terminate the guest)",
                      th2 ? Table::pct(*th2, 0) : "none", "60%"});
  thresholds.print(std::cout);

  print_banner(std::cout, "Guest CPU share vs host group size (L_H = 60%)");
  Table guest_table({"group_size", "guest_usage(nice 0)"});
  for (int size = 1; size <= 6; ++size) {
    ContentionStudy study({}, bench::kFleetSeed + 77 + size);
    const ContentionResult r = study.run(0.6, size, 0, kSeconds);
    guest_table.add_row({std::to_string(size), Table::pct(r.guest_usage, 1)});
  }
  guest_table.print(std::cout);
  std::cout << "(paper: the guest's share shrinks with group size and "
               "saturates around size 5)\n";
  return 0;
}
