// Ablation A2 — the Eq. 3 sparsity-optimized solver vs the generic dense
// interval-transition solver (paper §5.3).
//
// Both compute the same six first-passage probabilities; the sparse solver
// exploits the 8-element structure of Q/H. google-benchmark reports the
// speedup; equality is asserted on every run.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "harness.hpp"

namespace {

using namespace fgcs;

const SmpModel& model_for(std::size_t horizon) {
  static std::map<std::size_t, SmpModel> cache;
  auto it = cache.find(horizon);
  if (it == cache.end()) {
    // Estimate a representative model from a trace at the paper's 6 s
    // sampling, so horizon 6000 corresponds to the 10-hour window of Fig. 4.
    // Horizons beyond a day are benchmarked by re-embedding the estimated
    // Q/H into a wider-horizon model (the pmfs keep their support).
    const std::size_t est_horizon = std::min<std::size_t>(horizon, 6000);
    WorkloadParams params;
    params.sampling_period = 6;
    const MachineTrace trace =
        TraceGenerator(params, 4242).generate("abl2", 20);
    EstimatorConfig config;
    config.training_days = 12;
    const SmpEstimator estimator(config);
    const TimeWindow window{
        .start_of_day = 9 * kSecondsPerHour,
        .length = static_cast<SimTime>(est_horizon) * 6};
    SmpModel estimated = estimator.estimate(trace, 19, window);
    if (horizon > est_horizon) {
      SmpModel wide(kStateCount, horizon);
      for (std::size_t from : {0u, 1u})
        for (std::size_t to = 0; to < kStateCount; ++to) {
          if (to == from || estimated.q(from, to) == 0.0) continue;
          wide.set_q(from, to, estimated.q(from, to));
          const auto pmf = estimated.h_pmf(from, to);
          wide.set_h_pmf(from, to,
                         std::vector<double>(pmf.begin(), pmf.end()));
        }
      estimated = std::move(wide);
    }
    it = cache.emplace(horizon, std::move(estimated)).first;
  }
  return it->second;
}

void BM_SparseSolver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const SmpModel& model = model_for(n);
  const SparseTrSolver solver(model);
  for (auto _ : state) {
    const auto result = solver.solve(State::kS1, n);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}

void BM_FastSolver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const SmpModel& model = model_for(n);
  const FastTrSolver solver(model);
  for (auto _ : state) {
    const auto result = solver.solve(State::kS1, n);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}

void BM_DenseSolver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const SmpModel& model = model_for(n);
  const DenseSmpSolver solver(model);
  for (auto _ : state) {
    const auto fp = solver.first_passage(index_of(State::kS1), n);
    benchmark::DoNotOptimize(fp);
  }
  state.SetComplexityN(state.range(0));
}

void verify_equivalence() {
  for (const std::size_t n : {60u, 240u, 600u}) {
    const SmpModel& model = model_for(n);
    const SparseTrSolver sparse(model);
    const DenseSmpSolver dense(model);
    const FastTrSolver fast(model);
    const auto s = sparse.solve(State::kS1, n);
    const auto fp = dense.first_passage(index_of(State::kS1), n);
    const double dense_tr = 1.0 - (fp[2] + fp[3] + fp[4]);
    const double fast_tr = fast.solve(State::kS1, n).temporal_reliability;
    if (std::abs(s.temporal_reliability - dense_tr) > 1e-9 ||
        std::abs(s.temporal_reliability - fast_tr) > 1e-9) {
      std::fprintf(stderr, "solver mismatch at n=%zu: %f / %f / %f\n", n,
                   s.temporal_reliability, dense_tr, fast_tr);
      std::abort();
    }
  }
  std::printf(
      "equivalence check: sparse == dense == fast on n in {60,240,600}\n");
}

}  // namespace

// 6000 = the paper's largest window (10 h at 6 s). 28800 (two days at 6 s)
// sits past the FFT solver's crossover.
BENCHMARK(BM_SparseSolver)->Arg(60)->Arg(240)->Arg(600)->Arg(6000)->Arg(28800)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oNSquared);
BENCHMARK(BM_FastSolver)->Arg(60)->Arg(240)->Arg(600)->Arg(6000)->Arg(28800)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oNLogN);
BENCHMARK(BM_DenseSolver)->Arg(60)->Arg(240)->Arg(600)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oNSquared);

int main(int argc, char** argv) {
  verify_equivalence();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
