// Fig. 4 — computation time of resource availability prediction for time
// windows of different lengths, at the paper's native 6 s sampling period.
//
// Two series, as in the paper: the Q/H parameter computation alone, and the
// whole prediction (Q, H and TR). The TR recursion is O(n²) in the number of
// discretization steps n = T/d; google-benchmark's complexity fit reports the
// measured exponent (the paper measured ≈ n^1.85 on its 2005 testbed).
#include <benchmark/benchmark.h>

#include "harness.hpp"

namespace {

using namespace fgcs;

const MachineTrace& paper_rate_trace() {
  // 3 weeks at the paper's 6 s sampling: enough history for 10 training
  // weekdays, small enough to generate once.
  static const MachineTrace trace = [] {
    WorkloadParams params;
    params.sampling_period = 6;
    TraceGenerator generator(params, bench::kFleetSeed);
    return generator.generate("fig4", 21);
  }();
  return trace;
}

TimeWindow window_of_hours(std::int64_t hours) {
  return TimeWindow{.start_of_day = 8 * kSecondsPerHour,
                    .length = hours * kSecondsPerHour};
}

void BM_QHComputation(benchmark::State& state) {
  const MachineTrace& trace = paper_rate_trace();
  const SmpEstimator estimator(bench::bench_estimator_config());
  const TimeWindow window = window_of_hours(state.range(0));
  for (auto _ : state) {
    SmpModel model = estimator.estimate(trace, 20, window);
    benchmark::DoNotOptimize(model);
  }
  state.SetComplexityN(static_cast<std::int64_t>(window.steps(6)));
}

void BM_TotalPrediction(benchmark::State& state) {
  const MachineTrace& trace = paper_rate_trace();
  const AvailabilityPredictor predictor(bench::bench_estimator_config());
  const TimeWindow window = window_of_hours(state.range(0));
  for (auto _ : state) {
    const Prediction p =
        predictor.predict(trace, {.target_day = 20, .window = window});
    benchmark::DoNotOptimize(p);
  }
  state.SetComplexityN(static_cast<std::int64_t>(window.steps(6)));
}

}  // namespace

BENCHMARK(BM_QHComputation)
    ->DenseRange(1, 10, 1)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();
BENCHMARK(BM_TotalPrediction)
    ->DenseRange(1, 10, 1)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oNSquared);

BENCHMARK_MAIN();
