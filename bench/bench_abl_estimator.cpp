// Ablation A3 — estimator hyperparameters: the training-day count N (the
// paper's "most recent N weekdays") and Laplace smoothing α (our optional
// extension; the paper uses plain empirical statistics, α = 0).
#include <iostream>

#include "harness.hpp"

using namespace fgcs;

namespace {

RunningStats sweep_errors(const std::vector<MachineTrace>& fleet,
                          const EstimatorConfig& config) {
  RunningStats errors;
  for (const SimTime start_hr : {6, 9, 12, 15, 18, 21}) {
    for (const SimTime len_hr : {1, 2, 4, 8}) {
      const TimeWindow window{
          .start_of_day = start_hr * fgcs::kSecondsPerHour,
          .length = len_hr * fgcs::kSecondsPerHour};
      for (const MachineTrace& trace : fleet) {
        const auto eval = bench::evaluate_smp_window(
            trace, 0.5, DayType::kWeekday, window, config);
        if (eval) errors.add(eval->error);
      }
    }
  }
  return errors;
}

}  // namespace

int main() {
  const std::vector<MachineTrace> fleet = bench::lab_fleet(3);

  print_banner(std::cout, "A3a — training-day count N (alpha = 0)");
  Table n_table({"N(recent days)", "avg_err", "max_err", "windows"});
  for (const std::size_t n : {3u, 5u, 10u, 20u, 0u}) {
    EstimatorConfig config = bench::bench_estimator_config();
    config.training_days = n;
    const RunningStats errors = sweep_errors(fleet, config);
    n_table.add_row({n == 0 ? "all" : std::to_string(n),
                     errors.empty() ? "n/a" : Table::pct(errors.mean()),
                     errors.empty() ? "n/a" : Table::pct(errors.max()),
                     std::to_string(errors.count())});
  }
  n_table.print(std::cout);

  print_banner(std::cout, "A3b — Laplace smoothing alpha (N = 15)");
  Table a_table({"alpha", "avg_err", "max_err", "windows"});
  for (const double alpha : {0.0, 0.05, 0.2, 1.0}) {
    EstimatorConfig config = bench::bench_estimator_config();
    config.laplace_alpha = alpha;
    const RunningStats errors = sweep_errors(fleet, config);
    a_table.add_row({Table::num(alpha, 2),
                     errors.empty() ? "n/a" : Table::pct(errors.mean()),
                     errors.empty() ? "n/a" : Table::pct(errors.max()),
                     std::to_string(errors.count())});
  }
  a_table.print(std::cout);
  std::cout << "(the paper's plain empirical statistics correspond to "
               "alpha = 0; heavy smoothing pulls TR toward uninformative "
               "priors)\n";
  return 0;
}
