// Table 1 + Fig. 7 — SMP vs linear time-series models (AR(8), BM(8), MA(8),
// ARMA(8,8), LAST from the RPS toolkit), for windows starting at 8:00 on
// weekdays, lengths 1–10 h.
//
// Metric, as in the paper: for each (model, window length) the *maximum*
// relative error of the predicted TR over the tested machines. Expected
// shape: the SMP predictor wins across the board, and its advantage grows
// with the window length because the linear models' multiple-step-ahead
// forecasts degrade with lookahead (paper §7.2.1).
#include <iostream>
#include <memory>

#include "harness.hpp"

using namespace fgcs;

int main() {
  const int kMachines = 5;
  const double kTrainingFraction = 0.5;  // paper: equal training/test sizes
  const std::vector<MachineTrace> fleet = bench::lab_fleet(kMachines);
  const EstimatorConfig config = bench::bench_estimator_config();

  // Paper Table 1.
  print_banner(std::cout, "Table 1 — linear time series models (RPS)");
  Table models_table({"model", "description"});
  models_table.add_row({"AR(p)", "autoregressive model with p coefficients"});
  models_table.add_row({"BM(p)", "mean over the previous N values (N <= p)"});
  models_table.add_row({"MA(p)", "moving average model with p coefficients"});
  models_table.add_row({"ARMA(p,q)", "autoregressive moving average model"});
  models_table.add_row({"LAST", "last measured value"});
  models_table.print(std::cout);

  const std::vector<std::string> specs{"AR(8)", "BM(8)", "MA(8)", "ARMA(8,8)",
                                       "LAST"};

  print_banner(std::cout,
               "Fig. 7 — max relative error, windows starting 8:00 weekdays");
  std::vector<std::string> headers{"window_len_hr", "SMP"};
  headers.insert(headers.end(), specs.begin(), specs.end());
  headers.push_back("HIST-FREQ*");  // our extra baseline (paper ref [19] style)
  Table table(headers);

  for (SimTime len_hr = 1; len_hr <= 10; ++len_hr) {
    const TimeWindow window{.start_of_day = 8 * kSecondsPerHour,
                            .length = len_hr * kSecondsPerHour};
    std::vector<std::string> row{std::to_string(len_hr)};

    double smp_max = 0.0;
    bool smp_any = false;
    for (const MachineTrace& trace : fleet) {
      const auto eval = bench::evaluate_smp_window(
          trace, kTrainingFraction, DayType::kWeekday, window, config);
      if (eval) {
        smp_max = std::max(smp_max, eval->error);
        smp_any = true;
      }
    }
    row.push_back(smp_any ? Table::pct(smp_max) : "n/a");

    for (const std::string& spec : specs) {
      double model_max = 0.0;
      bool any = false;
      for (const MachineTrace& trace : fleet) {
        const std::unique_ptr<TimeSeriesModel> model =
            make_time_series_model(spec);
        const auto eval = bench::evaluate_ts_window(
            trace, kTrainingFraction, DayType::kWeekday, window, *model,
            config.thresholds);
        if (eval) {
          model_max = std::max(model_max, eval->error);
          any = true;
        }
      }
      row.push_back(any ? Table::pct(model_max) : "n/a");
    }

    // Extra baseline: historical per-day survival frequency over the same
    // training days the SMP uses (the [19]-style long-term average).
    {
      double freq_max = 0.0;
      bool any = false;
      const SmpEstimator estimator(config);
      const StateClassifier classifier(config.thresholds, bench::kPeriod);
      for (const MachineTrace& trace : fleet) {
        const auto target = bench::first_test_day(trace, kTrainingFraction,
                                                  DayType::kWeekday);
        if (!target) continue;
        const auto training =
            estimator.training_days_for(trace, *target, window);
        const FrequencyBaselineResult freq =
            predict_tr_frequency(trace, training, window, classifier);
        const auto test_days = bench::test_days_of_type(
            trace, kTrainingFraction, DayType::kWeekday);
        const EmpiricalTr emp =
            empirical_tr(trace, test_days, window, classifier);
        if (!freq.tr || !emp.tr || *emp.tr <= 0.0) continue;
        freq_max = std::max(freq_max, relative_error(*freq.tr, *emp.tr));
        any = true;
      }
      row.push_back(any ? Table::pct(freq_max) : "n/a");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "(paper: SMP beats all five models; the gap widens with the "
               "window length)\n"
            << "(*HIST-FREQ is our additional baseline, not part of the "
               "paper's comparison)\n";
  return 0;
}
