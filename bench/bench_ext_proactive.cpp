// Extension A5 — TR-driven proactive job management (the paper's motivating
// use case, refs [20][31], and its §8 integration plan).
//
// Compares the response time of compute jobs on the FGCS fleet under three
// policies:
//   * oblivious   — restart from scratch after every failure,
//   * fixed       — checkpoint on a fixed interval,
//   * adaptive    — checkpoint interval chosen from the predicted TR
//                   (frequent when the machine looks risky, rare when not).
#include <iostream>

#include "harness.hpp"

using namespace fgcs;

int main() {
  // A flakier lab than the default so failures actually bite.
  WorkloadParams params;
  params.sampling_period = bench::kPeriod;
  params.spike_rate_per_hour = 1.0;
  params.spike_transient_frac = 0.3;
  params.reboot_rate_per_day = 1.0;
  const std::vector<MachineTrace> fleet =
      generate_fleet(params, bench::kFleetSeed + 9, 4, 30, "flaky");

  std::vector<Gateway> gateways;
  gateways.reserve(fleet.size());
  Thresholds thresholds;
  for (const MachineTrace& trace : fleet)
    gateways.emplace_back(trace, thresholds, bench::bench_estimator_config());
  Registry registry;
  for (Gateway& g : gateways) registry.publish(g);

  SchedulerConfig sched_config;
  sched_config.retry_delay = 300;
  const JobScheduler scheduler(registry, sched_config);

  CheckpointConfig checkpoint;
  checkpoint.cost_seconds = 60;
  checkpoint.fixed_interval = 1800;

  struct Policy {
    const char* name;
    CheckpointMode mode;
  };
  const Policy policies[] = {{"oblivious (restart)", CheckpointMode::kNone},
                             {"fixed 30min ckpt", CheckpointMode::kFixed},
                             {"TR-adaptive ckpt", CheckpointMode::kAdaptive}};

  print_banner(std::cout,
               "A5 — job response time by management policy (4-CPU-hour jobs)");
  Table table({"policy", "completed", "mean_response_hr", "mean_failures",
               "mean_checkpoints"});

  for (const Policy& policy : policies) {
    RunningStats response_hr, failures, checkpoints;
    int completed = 0, total = 0;
    // Ten submissions across the last week, morning starts.
    for (int day = 22; day < 27; ++day) {
      for (const SimTime start_hr : {9, 14}) {
        const GuestJobSpec job{.job_id = "job",
                               .cpu_seconds = 4.0 * 3600.0,
                               .mem_mb = 120};
        const SimTime submit =
            day * kSecondsPerDay + start_hr * kSecondsPerHour;
        const JobOutcome outcome =
            scheduler.run_job(job, submit, submit + 3 * kSecondsPerDay,
                              policy.mode, checkpoint);
        ++total;
        if (outcome.completed) {
          ++completed;
          response_hr.add(static_cast<double>(outcome.response_time()) /
                          kSecondsPerHour);
          failures.add(outcome.failures);
          checkpoints.add(outcome.checkpoints_taken);
        }
      }
    }
    table.add_row({policy.name,
                   std::to_string(completed) + "/" + std::to_string(total),
                   response_hr.empty() ? "n/a" : Table::num(response_hr.mean(), 2),
                   failures.empty() ? "n/a" : Table::num(failures.mean(), 1),
                   checkpoints.empty() ? "n/a"
                                       : Table::num(checkpoints.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "(proactive, TR-aware management should beat oblivious "
               "restart on response time — the paper's [20][31] motivation)\n";
  return 0;
}
