// Tentpole perf proof — multi-reactor serving scalability (DESIGN.md §9,
// methodology in docs/BENCHMARKS.md).
//
// The single-reactor server serializes accept + decode + outbox writes on
// one epoll thread; sharding into N reactors should scale loopback serving
// throughput near-linearly until the solver pool, not the reactors, is the
// bottleneck. This bench measures, per reactor count in {1, 2, 4}:
//
//   saturate : fgcs_loadgen saturation mode (no pacing) — achieved
//              predict_batch ops/s, the throughput ceiling
//   pinned   : open-loop at a fixed offered rate — coordinated-omission-
//              safe p50/p99 at identical load, so the latency column is
//              comparable across reactor counts
//
// All runs share one seeded plan shape (same seed, key skew, batch mix) on
// a warmed service, so the table isolates the reactor count. The scaling
// gate (4 reactors ≥ 3× the 1-reactor ceiling) needs real cores to mean
// anything: with fewer than kMinCores the gate SKIPs (the table still
// prints — a 1-core container measures context switching, not sharding).
#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"

using namespace fgcs;

namespace {

/// Below this many hardware threads the ≥3× gate is vacuous: four reactors
/// time-slicing one or two cores cannot (and should not) beat one reactor.
constexpr unsigned kMinCores = 6;

struct Scenario {
  unsigned reactors;
  double saturate_rate;  // achieved ops/s, saturation mode
  net::LoadgenResult pinned;
};

}  // namespace

int main() {
  print_banner(std::cout,
               "multi-reactor serving: throughput and pinned-load latency "
               "vs reactor count");

  constexpr int kMachines = 8;
  constexpr int kDays = 12;
  const std::vector<MachineTrace> fleet = bench::lab_fleet(kMachines, kDays);
  std::vector<std::string> keys;
  for (const MachineTrace& trace : fleet) keys.push_back(trace.machine_id());

  // Shared plan shape; only the server's reactor count varies.
  net::LoadgenConfig saturate;
  saturate.seed = 42;
  saturate.offered_rate = 0;  // saturation: no pacing
  saturate.total_ops = 4000;
  saturate.connections = 8;
  saturate.key_count = keys.size();
  saturate.batch_min = 1;
  saturate.batch_max = 2;
  saturate.distinct_windows = 4;
  saturate.target_day = kDays;

  net::LoadgenConfig pinned = saturate;
  pinned.offered_rate = 400;  // modest pinned load for the latency column
  pinned.total_ops = 2000;

  const net::LoadgenPlan saturate_plan = net::build_plan(saturate);
  const net::LoadgenPlan pinned_plan = net::build_plan(pinned);

  std::vector<Scenario> scenarios;
  for (const unsigned reactors : {1u, 2u, 4u}) {
    net::ServerConfig config;
    config.reactors = reactors;
    config.max_connections = 64;
    // One shared, pre-warmed service: every window×machine the plans can
    // draw is solved once up front, so the bench saturates the *reactors*,
    // not the cold solver.
    net::PredictionServer server(config,
                                 std::make_shared<PredictionService>());
    for (const MachineTrace& trace : fleet) server.add_trace(trace);
    server.start();

    const net::LoadgenResult warmup = net::run_plan(
        saturate, saturate_plan, server.host(), server.port(), keys);
    (void)warmup;
    const net::LoadgenResult sat = net::run_plan(
        saturate, saturate_plan, server.host(), server.port(), keys);
    const net::LoadgenResult pin =
        net::run_plan(pinned, pinned_plan, server.host(), server.port(), keys);
    server.stop();

    scenarios.push_back(
        Scenario{reactors, sat.achieved_rate, pin});
  }

  const double base = scenarios.front().saturate_rate;
  Table table({"reactors", "saturate_ops_s", "speedup", "pinned_offered_s",
               "pinned_p50_ms", "pinned_p99_ms"});
  for (const Scenario& s : scenarios)
    table.add_row({std::to_string(s.reactors), Table::num(s.saturate_rate, 0),
                   Table::num(s.saturate_rate / base, 2) + "x",
                   Table::num(pinned.offered_rate, 0),
                   Table::num(s.pinned.p50_ms), Table::num(s.pinned.p99_ms)});
  table.print(std::cout);

  const unsigned cores = std::thread::hardware_concurrency();
  const double speedup4 = scenarios.back().saturate_rate / base;
  std::cout << "\nhardware threads: " << cores << "\n";
  std::cout << "4-reactor speedup: " << Table::num(speedup4, 2)
            << "x (target >= 3x on >= " << kMinCores << " cores): ";
  if (cores < kMinCores) {
    std::cout << "SKIP (hardware: " << cores << " < " << kMinCores
              << " threads — table above is informational)\n";
    return 0;
  }
  const bool pass = speedup4 >= 3.0;
  std::cout << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
