// fgcs_gen — generate synthetic monitored traces to files.
//
//   fgcs_gen --out DIR [--machines N] [--days D] [--seed S]
//            [--period SECONDS] [--profile lab|enterprise|preemption]
//            [--drift PER_DAY] [--prefix NAME] [--vm-class NAME]
//
// Writes one binary trace per machine (<prefix>NN.fgcs) loadable by
// fgcs_predict / fgcs_eval / fgcs_inspect and by MachineTrace::load_file.
//
// --profile preemption swaps the diurnal user model for the transient-VM
// preemption family (uptime-increasing Weibull hazard, hard max-lifetime
// cutoff, correlated revocation bursts); --vm-class picks one of the
// transient_vm_catalog() hazard presets (default spot-standard). --drift is
// a diurnal-profile knob and is rejected for this family.
#include <cstdio>
#include <string>

#include "fgcs.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fgcs;
  try {
    const ArgParser args(argc, argv);
    const std::string out_dir = args.get("out");
    const int machines = static_cast<int>(args.get_int_or("machines", 4));
    const int days = static_cast<int>(args.get_int_or("days", 30));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int_or("seed", 1));
    const std::string profile_name = args.get_or("profile", "lab");
    const std::string prefix = args.get_or("prefix", "host");

    std::vector<MachineTrace> fleet;
    if (profile_name == "preemption") {
      const std::string class_name = args.get_or("vm-class", "spot-standard");
      const TransientVmClass* vm_class = nullptr;
      for (const TransientVmClass& entry : transient_vm_catalog())
        if (entry.name == class_name) vm_class = &entry;
      if (vm_class == nullptr) {
        std::fprintf(stderr, "unknown --vm-class '%s'; catalog:\n",
                     class_name.c_str());
        for (const TransientVmClass& entry : transient_vm_catalog())
          std::fprintf(stderr, "  %s\n", entry.name.c_str());
        return 1;
      }
      PreemptionParams params = PreemptionParams::from_class(*vm_class);
      params.sampling_period = args.get_int_or("period", 60);
      args.check_all_consumed();
      fleet = generate_preemption_fleet(params, seed, machines, days, prefix);
    } else {
      WorkloadParams params;
      params.sampling_period = args.get_int_or("period", 60);
      params.drift_per_day = args.get_double_or("drift", 0.0);
      if (profile_name == "enterprise") {
        params.profile = DiurnalProfile::enterprise_desktop();
      } else if (profile_name != "lab") {
        std::fprintf(stderr,
                     "unknown profile '%s' (use lab|enterprise|preemption)\n",
                     profile_name.c_str());
        return 1;
      }
      args.check_all_consumed();
      fleet = generate_fleet(params, seed, machines, days, prefix);
    }
    for (const MachineTrace& trace : fleet) {
      const std::string path = out_dir + "/" + trace.machine_id() + ".fgcs";
      trace.save_file(path);
      std::printf("%s: %lld days, uptime %.2f%%, mean load %.1f%%\n",
                  path.c_str(), static_cast<long long>(trace.day_count()),
                  100.0 * trace.uptime_fraction(), 100.0 * trace.mean_load());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fgcs_gen: %s\n", error.what());
    return 1;
  }
}
