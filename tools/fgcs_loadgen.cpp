// fgcs_loadgen — seeded open-loop load generator for the prediction wire
// protocol (methodology in docs/BENCHMARKS.md, schedule semantics in
// src/net/loadgen.hpp).
//
//   fgcs_loadgen --selfserve [--reactors N] [--machines M] [--days D] ...
//   fgcs_loadgen --host H --port P --keys id1,id2,... --target-day N ...
//
// Common knobs:
//   --seed S            schedule seed (default 1); same seed ⇒ byte-identical
//                       plan (and --plan-only output)
//   --rate R            offered ops/sec, Poisson arrivals (default 200);
//                       0 = saturate (no pacing)
//   --ops N             total predict_batch calls (default 1000)
//   --connections N     concurrent connections (default 8)
//   --mix read|churn    read  = persistent connections, hot windows
//                       churn = 30% reconnects, many distinct windows
//   --theta T           Zipf key-popularity skew (default 0.99)
//   --plan-only         print the deterministic plan summary + digest and
//                       exit without touching the network
//   --assert-achieved P exit 1 unless achieved ≥ P% of offered (CI smoke)
//
// --selfserve spins an in-process multi-reactor PredictionServer over a
// synthetic fleet on an ephemeral loopback port and drives that, so a CI
// smoke needs no orchestration. Latency is reported coordinated-omission-
// safe: measured from each op's *scheduled* arrival, not its actual send.
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fgcs.hpp"
#include "net/loadgen.hpp"
#include "util/cli.hpp"

namespace {

using namespace fgcs;

std::vector<std::string> split_keys(const std::string& csv) {
  std::vector<std::string> keys;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::string key = csv.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    if (!key.empty()) keys.push_back(key);
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return keys;
}

int main_checked(int argc, char** argv) {
  const ArgParser args(argc, argv, {"selfserve", "plan-only"});

  net::LoadgenConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  config.offered_rate = std::stod(args.get_or("rate", "200"));
  config.total_ops = static_cast<std::size_t>(args.get_int_or("ops", 1000));
  config.connections =
      static_cast<unsigned>(args.get_int_or("connections", 8));
  config.zipf_theta = std::stod(args.get_or("theta", "0.99"));

  const std::string mix = args.get_or("mix", "read");
  if (mix == "read") {
    config.reconnect_prob = 0.0;
    config.distinct_windows = 4;
    config.batch_min = 1;
    config.batch_max = 4;
  } else if (mix == "churn") {
    config.reconnect_prob = 0.30;
    config.distinct_windows = 64;
    config.batch_min = 1;
    config.batch_max = 8;
  } else {
    std::fprintf(stderr, "fgcs_loadgen: unknown --mix '%s' (read|churn)\n",
                 mix.c_str());
    return 1;
  }

  const bool selfserve = args.has("selfserve");
  const bool plan_only = args.has("plan-only");
  const double assert_achieved =
      std::stod(args.get_or("assert-achieved", "0"));

  // Target resolution — either an in-process server over a synthetic
  // fleet, or an external host/port plus explicit keys.
  const unsigned reactors =
      static_cast<unsigned>(args.get_int_or("reactors", 2));
  const std::size_t machines =
      static_cast<std::size_t>(args.get_int_or("machines", 4));
  const std::size_t days = static_cast<std::size_t>(args.get_int_or("days", 8));
  const std::string host = args.get_or("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.get_int_or("port", 0));
  std::vector<std::string> keys = split_keys(args.get_or("keys", ""));
  config.target_day = args.get_int_or("target-day", 10);
  args.check_all_consumed();

  std::vector<MachineTrace> fleet;
  if (selfserve) {
    WorkloadParams params;
    params.sampling_period = 60;
    fleet = generate_fleet(params, /*seed=*/20060619, machines, days,
                           "loadgen");
    keys.clear();
    for (const MachineTrace& trace : fleet) keys.push_back(trace.machine_id());
    config.target_day = static_cast<std::int64_t>(days);
  } else if (keys.empty() && !plan_only) {
    std::fprintf(stderr,
                 "fgcs_loadgen: need --keys (or --selfserve) to know what "
                 "to request\n");
    return 1;
  }
  if (!keys.empty()) config.key_count = keys.size();

  const net::LoadgenPlan plan = net::build_plan(config);
  std::printf(
      "fgcs_loadgen: plan seed=%" PRIu64
      " mix=%s ops=%zu connections=%u keys=%zu theta=%.2f batch=[%zu,%zu] "
      "reconnect=%.2f windows=%zu rate=%.1f\n",
      config.seed, mix.c_str(), plan.ops.size(), config.connections,
      config.key_count, config.zipf_theta, config.batch_min, config.batch_max,
      config.reconnect_prob, config.distinct_windows, config.offered_rate);
  std::printf("fgcs_loadgen: plan horizon=%.6fs digest=%016" PRIx64 "\n",
              plan.horizon, plan.digest());
  if (plan_only) return 0;

  std::unique_ptr<net::PredictionServer> server;
  std::uint16_t target_port = port;
  if (selfserve) {
    net::ServerConfig server_config;
    server_config.port = port;
    server_config.reactors = reactors;
    server_config.max_connections = config.connections + 16;
    server = std::make_unique<net::PredictionServer>(
        server_config, std::make_shared<PredictionService>());
    for (const MachineTrace& trace : fleet) server->add_trace(trace);
    server->start();
    target_port = server->port();
    std::printf("fgcs_loadgen: selfserve %u reactor(s) (%s) on %s:%u\n",
                server->reactor_count(),
                server->accept_handoff() ? "accept-handoff" : "SO_REUSEPORT",
                server->host().c_str(), target_port);
  }

  const net::LoadgenResult result =
      net::run_plan(config, plan, host, target_port, keys);

  std::printf("fgcs_loadgen: run completed=%zu/%zu failed=%zu "
              "predictions=%" PRIu64 " wall=%.3fs offered=%.1f/s "
              "achieved=%.1f/s\n",
              result.completed, result.ops, result.failed, result.predictions,
              result.wall_seconds, config.offered_rate, result.achieved_rate);
  std::printf("fgcs_loadgen: latency p50=%.3fms p99=%.3fms p999=%.3fms "
              "max=%.3fms (%s)\n",
              result.p50_ms, result.p99_ms, result.p999_ms, result.max_ms,
              config.offered_rate > 0 ? "coordinated-omission-safe"
                                      : "saturation mode, from send");

  if (server) {
    server->stop();
    const net::ServerStats stats = server->stats();
    std::printf("fgcs_loadgen: server frames=%" PRIu64 " responses=%" PRIu64
                " errors=%" PRIu64 " across %u reactor(s)\n",
                stats.frames, stats.responses, stats.errors,
                server->reactor_count());
  }

  if (assert_achieved > 0) {
    const double floor = config.offered_rate * assert_achieved / 100.0;
    if (config.offered_rate <= 0) {
      std::fprintf(stderr,
                   "fgcs_loadgen: --assert-achieved needs a positive "
                   "--rate\n");
      return 1;
    }
    if (result.achieved_rate < floor || result.failed > 0) {
      std::fprintf(stderr,
                   "fgcs_loadgen: FAILED achieved %.1f/s < %.1f%% of offered "
                   "%.1f/s (or failures: %zu)\n",
                   result.achieved_rate, assert_achieved, config.offered_rate,
                   result.failed);
      return 1;
    }
    std::printf("fgcs_loadgen: OK achieved ≥ %.0f%% of offered\n",
                assert_achieved);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return main_checked(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fgcs_loadgen: %s\n", error.what());
    return 1;
  }
}
