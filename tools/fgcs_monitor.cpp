// fgcs_monitor — stream monitor samples into an ingest server.
//
//   fgcs_monitor --trace FILE --connect HOST --port P [--batch N]
//
// Replays FILE's packed samples as kAppendSamples frames against a running
// `fgcs_serve --ingest`, resuming wherever the server's history for this
// machine already ends (the first ack's duplicate count says how much of the
// replay the server had). The machine spec (epoch day-of-week, sampling
// period, total memory) rides in every frame, so the server needs no prior
// registration. --batch caps samples per frame (default one day).
//
//   fgcs_monitor --selfcheck [--port P] [--seed S]
//
// Self-check mode, the tool's smoke test: starts an in-process ingest
// server, streams a synthetic fleet through the real wire path in
// seed-varied batch sizes (plus a deliberate retransmission), and verifies
// the full contract: every ack's bookkeeping, one cache-generation bump per
// closed day, the server's final trace byte-equal to the source, served TRs
// bit-identical to a local AvailabilityPredictor, and an incrementally
// maintained estimator agreeing count-for-count with the from-scratch one.
// Exits 0 on success.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fgcs.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace fgcs;

/// Streams trace samples [start_index, end) to the server in frames of at
/// most `batch` samples. Returns the acks' totals (accepted, duplicates,
/// days closed/retired summed; next_index and generation from the last).
net::WireAppendAck stream_trace(net::PredictionClient& client,
                                const MachineTrace& trace, std::size_t batch,
                                std::uint64_t start_index) {
  net::WireAppendRequest request;
  request.machine_id = trace.machine_id();
  request.epoch_day_of_week =
      static_cast<std::uint8_t>(trace.calendar().epoch_day_of_week());
  request.sampling_period = trace.sampling_period();
  request.total_mem_mb = static_cast<std::uint32_t>(trace.total_mem_mb());

  const std::size_t per_day = trace.samples_per_day();
  const std::uint64_t total =
      static_cast<std::uint64_t>(trace.day_count()) * per_day;
  net::WireAppendAck ack;
  std::uint64_t index = start_index;
  while (index < total) {
    const std::uint64_t count =
        std::min<std::uint64_t>(batch, total - index);
    request.first_sample_index = index;
    request.samples.clear();
    for (std::uint64_t i = index; i < index + count; ++i)
      request.samples.push_back(trace.at(
          static_cast<std::int64_t>(i / per_day), i % per_day));
    const net::WireAppendAck frame_ack = client.append_samples(request);
    ack.accepted += frame_ack.accepted;
    ack.duplicates += frame_ack.duplicates;
    ack.days_closed += frame_ack.days_closed;
    ack.days_retired += frame_ack.days_retired;
    ack.next_index = frame_ack.next_index;
    ack.generation = frame_ack.generation;
    index = frame_ack.next_index;
  }
  return ack;
}

int selfcheck(std::uint16_t port, std::uint64_t seed) {
  WorkloadParams params;
  params.sampling_period = 60;
  const int days = 8;
  const std::vector<MachineTrace> fleet =
      generate_fleet(params, seed, /*count=*/2, days, "monitored");

  const auto service = std::make_shared<PredictionService>();
  net::ServerConfig server_config;
  server_config.port = port;
  server_config.ingest = true;
  net::PredictionServer server(server_config, service);
  server.start();
  std::printf("fgcs_monitor: selfcheck streaming to %s:%u\n",
              server.host().c_str(), server.port());

  net::ClientConfig client_config;
  client_config.port = server.port();
  net::PredictionClient client(client_config);

  Rng rng(seed ^ 0xf9c5'0001);
  for (const MachineTrace& trace : fleet) {
    const std::size_t per_day = trace.samples_per_day();
    const std::uint64_t total =
        static_cast<std::uint64_t>(trace.day_count()) * per_day;
    // Seed-varied batch sizes: some frames smaller than a day, some
    // spanning several day boundaries in one append.
    const std::size_t batch = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(per_day) / 4,
        static_cast<std::int64_t>(per_day) * 3));
    const net::WireAppendAck ack = stream_trace(client, trace, batch, 0);
    if (ack.next_index != total ||
        ack.generation !=
            static_cast<std::uint64_t>(trace.day_count())) {
      std::fprintf(stderr,
                   "fgcs_monitor: selfcheck FAILED: %s acked next=%llu "
                   "gen=%llu, want next=%llu gen=%lld\n",
                   trace.machine_id().c_str(),
                   static_cast<unsigned long long>(ack.next_index),
                   static_cast<unsigned long long>(ack.generation),
                   static_cast<unsigned long long>(total),
                   static_cast<long long>(trace.day_count()));
      return 1;
    }
    // Retransmit the final day verbatim: the store must skip every sample
    // as a duplicate and close nothing.
    net::WireAppendRequest retry;
    retry.machine_id = trace.machine_id();
    retry.epoch_day_of_week =
        static_cast<std::uint8_t>(trace.calendar().epoch_day_of_week());
    retry.sampling_period = trace.sampling_period();
    retry.total_mem_mb = static_cast<std::uint32_t>(trace.total_mem_mb());
    retry.first_sample_index = total - per_day;
    for (std::size_t i = 0; i < per_day; ++i)
      retry.samples.push_back(trace.at(trace.day_count() - 1, i));
    const net::WireAppendAck dup = client.append_samples(retry);
    if (dup.accepted != 0 || dup.duplicates != per_day ||
        dup.days_closed != 0 || dup.next_index != total) {
      std::fprintf(stderr,
                   "fgcs_monitor: selfcheck FAILED: retransmission acked "
                   "%llu accepted / %llu duplicates\n",
                   static_cast<unsigned long long>(dup.accepted),
                   static_cast<unsigned long long>(dup.duplicates));
      return 1;
    }
    // The server's rolled-up history must equal the source byte for byte.
    const std::shared_ptr<const MachineTrace> snap =
        server.store()->snapshot(trace.machine_id());
    if (snap == nullptr || snap->day_count() != trace.day_count()) {
      std::fprintf(stderr, "fgcs_monitor: selfcheck FAILED: bad snapshot\n");
      return 1;
    }
    for (std::int64_t d = 0; d < trace.day_count(); ++d)
      for (std::size_t i = 0; i < per_day; ++i)
        if (!(snap->at(d, i) == trace.at(d, i))) {
          std::fprintf(stderr,
                       "fgcs_monitor: selfcheck FAILED: snapshot sample "
                       "(%lld, %zu) differs from source\n",
                       static_cast<long long>(d), i);
          return 1;
        }
  }

  // Served predictions over the streamed history must be bit-identical to a
  // local AvailabilityPredictor on the source traces.
  const AvailabilityPredictor predictor;
  std::size_t checked = 0;
  for (const MachineTrace& trace : fleet)
    for (const SimTime start_hour : {8, 20}) {
      const PredictionRequest request{
          .target_day = trace.day_count(),
          .window = {.start_of_day = start_hour * kSecondsPerHour,
                     .length = 2 * kSecondsPerHour}};
      const Prediction expected = predictor.predict(trace, request);
      const Prediction served = client.predict(net::WireRequestItem{
          .machine_key = trace.machine_id(), .request = request});
      if (served.temporal_reliability != expected.temporal_reliability ||
          served.initial_state != expected.initial_state) {
        std::fprintf(stderr,
                     "fgcs_monitor: selfcheck FAILED: served TR %.17g != "
                     "local %.17g (%s)\n",
                     served.temporal_reliability,
                     expected.temporal_reliability,
                     trace.machine_id().c_str());
        return 1;
      }
      ++checked;
    }

  // Local incremental-vs-scratch differential on one streamed machine: feed
  // the snapshot day by day and compare the maintained counts against a
  // fresh count over the estimator's selected training days.
  const MachineTrace& trace = fleet.front();
  const TimeWindow window{.start_of_day = 8 * kSecondsPerHour,
                          .length = 2 * kSecondsPerHour};
  const EstimatorConfig config;
  IncrementalEstimator incremental(config, window,
                                   trace.day_type(trace.day_count()),
                                   trace.sampling_period());
  for (std::int64_t d = 1; d <= trace.day_count(); ++d) {
    const MachineTrace prefix = trace.slice(0, d);
    incremental.on_day_appended(prefix, 0);
  }
  const SmpEstimator scratch(config);
  const TransitionCounts expected = scratch.count_transitions(
      trace,
      scratch.training_days_for(trace, trace.day_count(), window), window);
  for (const State from : {State::kS1, State::kS2}) {
    if (incremental.counts().censored(from) != expected.censored(from) ||
        incremental.counts().entries(from) != expected.entries(from)) {
      std::fprintf(stderr,
                   "fgcs_monitor: selfcheck FAILED: incremental counts "
                   "diverge from scratch\n");
      return 1;
    }
    for (std::size_t k = 0; k < kStateCount; ++k)
      for (std::size_t hold = 1; hold <= expected.horizon(); ++hold)
        if (incremental.counts().count(from, state_from_index(k), hold) !=
            expected.count(from, state_from_index(k), hold)) {
          std::fprintf(stderr,
                       "fgcs_monitor: selfcheck FAILED: incremental count "
                       "mismatch\n");
          return 1;
        }
  }

  server.stop();
  const net::ServerStats stats = server.stats();
  std::printf(
      "fgcs_monitor: selfcheck OK — %llu appends (%llu samples, %llu "
      "duplicates), %llu days closed, %zu served predictions bit-identical, "
      "incremental counts exact\n",
      static_cast<unsigned long long>(stats.appends),
      static_cast<unsigned long long>(stats.append_samples),
      static_cast<unsigned long long>(stats.append_duplicates),
      static_cast<unsigned long long>(stats.days_closed), checked);
  return 0;
}

int main_checked(int argc, char** argv) {
  const ArgParser args(argc, argv, {"selfcheck"});
  if (args.has("selfcheck")) {
    const auto port = static_cast<std::uint16_t>(args.get_int_or("port", 0));
    const auto seed =
        static_cast<std::uint64_t>(args.get_int_or("seed", 20060619));
    args.check_all_consumed();
    return selfcheck(port, seed);
  }

  const std::string path = args.get("trace");
  net::ClientConfig client_config;
  client_config.host = args.get_or("connect", "127.0.0.1");
  client_config.port = static_cast<std::uint16_t>(args.get_int("port"));
  const std::int64_t batch_arg = args.get_int_or("batch", 0);
  args.check_all_consumed();

  const MachineTrace trace = MachineTrace::load_file(path);
  const std::size_t batch = batch_arg > 0
                                ? static_cast<std::size_t>(batch_arg)
                                : trace.samples_per_day();
  net::PredictionClient client(client_config);
  const net::WireAppendAck ack = stream_trace(client, trace, batch, 0);
  std::printf(
      "fgcs_monitor: streamed %s (%lld days) to %s:%u — server next=%llu "
      "gen=%llu, %llu days closed this run, %llu retired\n",
      trace.machine_id().c_str(), static_cast<long long>(trace.day_count()),
      client_config.host.c_str(), client_config.port,
      static_cast<unsigned long long>(ack.next_index),
      static_cast<unsigned long long>(ack.generation),
      static_cast<unsigned long long>(ack.days_closed),
      static_cast<unsigned long long>(ack.days_retired));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return main_checked(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fgcs_monitor: %s\n", error.what());
    return 1;
  }
}
