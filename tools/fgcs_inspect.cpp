// fgcs_inspect — summarize a recorded trace, or dump one day as CSV.
//
//   fgcs_inspect --trace FILE                 summary + per-day occurrence table
//   fgcs_inspect --trace FILE --day N --csv   day N as CSV on stdout
#include <cstdio>
#include <iostream>

#include "fgcs.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fgcs;
  try {
    const ArgParser args(argc, argv, {"csv"});
    const MachineTrace trace = MachineTrace::load_file(args.get("trace"));

    if (args.has("csv")) {
      const std::int64_t day = args.get_int("day");
      args.check_all_consumed();
      trace.write_day_csv(std::cout, day);
      return 0;
    }
    args.check_all_consumed();

    std::printf("machine        : %s\n", trace.machine_id().c_str());
    std::printf("days           : %lld\n",
                static_cast<long long>(trace.day_count()));
    std::printf("sampling period: %lld s (%zu samples/day)\n",
                static_cast<long long>(trace.sampling_period()),
                trace.samples_per_day());
    std::printf("memory         : %d MB\n", trace.total_mem_mb());
    std::printf("uptime         : %.2f%%\n", 100.0 * trace.uptime_fraction());
    std::printf("mean host load : %.1f%%\n", 100.0 * trace.mean_load());

    const StateClassifier classifier(Thresholds{}, trace.sampling_period());
    const UnavailabilityStats stats = count_unavailability(trace, classifier);
    std::printf("\nunavailability occurrences (whole trace):\n");
    std::printf("  S3 cpu contention : %zu\n", stats.cpu_contention);
    std::printf("  S4 memory thrash  : %zu\n", stats.memory_thrash);
    std::printf("  S5 revocation     : %zu\n", stats.revocation);
    std::printf("  total             : %zu (%.1f/day)\n", stats.total(),
                static_cast<double>(stats.total()) /
                    static_cast<double>(trace.day_count()));

    // Hourly availability heat-row: fraction of weekday samples per hour in
    // an available state — where are this machine's habitual trouble times?
    std::printf("\nweekday availability by hour:\n  ");
    for (int hour = 0; hour < kHoursPerDay; ++hour) {
      std::size_t available = 0, total = 0;
      for (std::int64_t d = 0; d < trace.day_count(); ++d) {
        if (trace.day_type(d) != DayType::kWeekday) continue;
        const TimeWindow w{.start_of_day = hour * kSecondsPerHour,
                           .length = kSecondsPerHour};
        if (!trace.window_in_range(d, w)) continue;
        for (const State s : classifier.classify_window(trace, d, w)) {
          ++total;
          if (is_available(s)) ++available;
        }
      }
      const double frac =
          total == 0 ? 1.0
                     : static_cast<double>(available) / static_cast<double>(total);
      std::printf("%02d:%.0f%% ", hour, 100.0 * frac);
      if (hour % 6 == 5) std::printf("\n  ");
    }
    std::printf("\n");
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fgcs_inspect: %s\n", error.what());
    return 1;
  }
}
