// fgcs_metrics — run a prediction workload and dump the process-wide
// Prometheus-style metrics exposition (MetricsRegistry::render_text(),
// DESIGN.md §8).
//
//   fgcs_metrics --batch FILE [--training-days N] [--threads N]
//       serve a fgcs_predict-style request file through a PredictionService
//
//   fgcs_metrics [--machines N] [--days D] [--seed S] [--hours H]
//                [--repeat R]
//       no trace files needed: generate a synthetic fleet in memory, probe
//       every machine at a grid of windows R times (first pass cold, rest
//       warm), and report what the metrics layer saw
//
// Only the exposition goes to stdout (pipe it to a file or a scrape
// endpoint); the one-line workload summary goes to stderr. Works with
// FGCS_TRACE_FILE and FGCS_FAILPOINTS like every fgcs binary.
#include <cstdio>
#include <string>
#include <vector>

#include "batch_file.hpp"
#include "core/prediction_service.hpp"
#include "util/cli.hpp"
#include "util/metrics.hpp"
#include "workload/trace_generator.hpp"

namespace {

std::vector<fgcs::BatchRequest> synthetic_requests(
    const std::vector<fgcs::MachineTrace>& fleet, std::int64_t hours) {
  using namespace fgcs;
  // Same-shape probes a scheduler would issue: every machine, a spread of
  // start times, the requested duration.
  std::vector<BatchRequest> requests;
  for (const MachineTrace& trace : fleet) {
    for (const SimTime start_hour : {1, 9, 14, 20}) {
      PredictionRequest request;
      request.target_day = trace.day_count();
      request.window.start_of_day = start_hour * kSecondsPerHour;
      request.window.length = hours * kSecondsPerHour;
      requests.push_back(BatchRequest{.trace = &trace, .request = request});
    }
  }
  return requests;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fgcs;
  try {
    const ArgParser args(argc, argv, {});
    ServiceConfig config;
    config.estimator.training_days =
        static_cast<std::size_t>(args.get_int_or("training-days", 15));
    config.max_threads = static_cast<unsigned>(args.get_int_or("threads", 0));

    std::size_t served = 0;
    PredictionService service(config);
    if (args.has("batch")) {
      const std::string path = args.get("batch");
      args.check_all_consumed();
      const tools::BatchFile batch = tools::load_batch_file(path);
      service.predict_batch(batch.requests);
      served = batch.requests.size();
    } else {
      const int machines = args.get_int_or("machines", 8);
      const int days = args.get_int_or("days", 20);
      const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 7));
      const std::int64_t hours = args.get_int_or("hours", 3);
      const int repeat = args.get_int_or("repeat", 2);
      args.check_all_consumed();

      WorkloadParams params;
      params.sampling_period = 60;  // minute ticks: fast, same state patterns
      const std::vector<MachineTrace> fleet =
          generate_fleet(params, seed, machines, days, "metrics");
      const std::vector<BatchRequest> requests =
          synthetic_requests(fleet, hours);
      for (int r = 0; r < repeat; ++r) service.predict_batch(requests);
      served = requests.size() * static_cast<std::size_t>(repeat);
    }

    std::fprintf(stderr, "# fgcs_metrics: served %zu requests\n", served);
    // Render while `service` is alive so its attachments are folded in.
    std::fputs(MetricsRegistry::global().render_text().c_str(), stdout);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fgcs_metrics: %s\n", error.what());
    return 1;
  }
}
