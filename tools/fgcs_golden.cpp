// fgcs_golden — golden-trace regression fixture for the paper's TR numbers.
//
// The prediction stack has been refactored three PRs in a row (service
// memoization, failpoints, thread pool); nothing so far pinned the *values*
// the pipeline produces. This tool computes temporal reliability over a
// fixed, fully seed-pinned workload — 4 synthetic machines × a grid of
// (target day, window start W_init, window length T) straight out of the
// paper's evaluation axes — and compares against a committed CSV fixture.
//
//   fgcs_golden --check  [--file CSV]   recompute, fail on drift (default)
//   fgcs_golden --regen  [--file CSV]   rewrite the fixture
//   fgcs_golden --selftest              prove the check catches a 1e-9 nudge
//
// --workload lab (default) pins the original 128-row lab-fleet grid;
// --workload preemption pins a 64-row grid over the transient-VM preemption
// fleet (uptime-increasing hazard + correlated revocation bursts), each
// against its own fixture file.
//
// Values are written with %.17g, which round-trips IEEE doubles exactly, and
// compared with tolerance 1e-12: a fresh fixture re-checks to drift zero,
// while a 1e-9 perturbation — far below anything visible in the paper's
// 4-decimal tables — fails loudly. Determinism rests on the project Rng
// (xoshiro256**, fully seeded) plus libm transcendentals, so fixtures are
// stable per platform/toolchain; CI checks them on its pinned image, and a
// legitimate numeric change (or platform move) is one --regen away.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "workload/preemption.hpp"
#include "workload/trace_generator.hpp"

namespace {

using namespace fgcs;

constexpr const char* kDefaultFixture = "tests/golden/golden_tr.csv";
constexpr double kTolerance = 1e-12;

struct GoldenRow {
  std::string machine;
  std::int64_t target_day = 0;
  SimTime window_start = 0;
  SimTime window_length = 0;
  double tr = 0.0;
};

/// The pinned workloads + grids. Changing anything here invalidates the
/// matching committed fixture — bump deliberately and --regen in the same
/// commit. Both fleets share the seed and the 4×30-day shape; the preemption
/// grid drops the 3 h/12 h lengths to keep its fixture at 64 rows.
std::vector<MachineTrace> golden_fleet(const std::string& workload) {
  if (workload == "preemption")
    return generate_preemption_fleet(PreemptionParams{}, /*seed=*/20060619,
                                     /*count=*/4, /*days=*/30, "preempt");
  WorkloadParams params;
  params.sampling_period = 60;  // minute ticks keep the fixture fast
  return generate_fleet(params, /*seed=*/20060619, /*count=*/4, /*days=*/30,
                        "golden");
}

std::vector<GoldenRow> compute_golden(const std::string& workload) {
  const std::vector<MachineTrace> fleet = golden_fleet(workload);
  const std::vector<SimTime> lengths =
      workload == "preemption" ? std::vector<SimTime>{1, 6}
                               : std::vector<SimTime>{1, 3, 6, 12};

  const AvailabilityPredictor predictor{EstimatorConfig{}};
  std::vector<GoldenRow> rows;
  for (const MachineTrace& trace : fleet) {
    // Day 15 pins mid-history training-day selection, day 30 the forecast
    // (day-after-history) path; starts cover night/morning/afternoon and a
    // 22:00 start whose longer windows wrap midnight.
    for (const std::int64_t day : {15, 30}) {
      for (const SimTime start_hour : {2, 9, 14, 22}) {
        for (const SimTime length_hours : lengths) {
          GoldenRow row;
          row.machine = trace.machine_id();
          row.target_day = day;
          row.window_start = start_hour * kSecondsPerHour;
          row.window_length = length_hours * kSecondsPerHour;
          const PredictionRequest request{
              .target_day = day,
              .window = TimeWindow{.start_of_day = row.window_start,
                                   .length = row.window_length},
              .initial_state = std::nullopt};
          row.tr = predictor.predict(trace, request).temporal_reliability;
          rows.push_back(row);
        }
      }
    }
  }
  return rows;
}

std::string format_row(const GoldenRow& row) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), "%s,%lld,%lld,%lld,%.17g",
                row.machine.c_str(), static_cast<long long>(row.target_day),
                static_cast<long long>(row.window_start),
                static_cast<long long>(row.window_length), row.tr);
  return buffer;
}

GoldenRow parse_row(const std::string& line, const std::string& where) {
  GoldenRow row;
  std::istringstream fields(line);
  std::string cell;
  const auto next = [&] {
    if (!std::getline(fields, cell, ','))
      throw DataError(where + ": expected machine,day,start,length,tr");
    return cell;
  };
  row.machine = next();
  row.target_day = std::stoll(next());
  row.window_start = std::stoll(next());
  row.window_length = std::stoll(next());
  row.tr = std::strtod(next().c_str(), nullptr);
  return row;
}

int regen(const std::string& path, const std::string& workload) {
  const std::vector<GoldenRow> rows = compute_golden(workload);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "fgcs_golden: cannot write %s\n", path.c_str());
    return 1;
  }
  out << "# Golden TR fixture — regenerate with: fgcs_golden --regen --file "
         "<this file>\n";
  out << "# machine,target_day,window_start,window_length,tr\n";
  for (const GoldenRow& row : rows) out << format_row(row) << "\n";
  std::printf("fgcs_golden: wrote %zu rows to %s\n", rows.size(), path.c_str());
  return 0;
}

int check(const std::string& path, const std::string& workload) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr,
                 "fgcs_golden: cannot open %s (run --regen first)\n",
                 path.c_str());
    return 1;
  }
  std::vector<GoldenRow> expected;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    expected.push_back(
        parse_row(line, path + ":" + std::to_string(line_no)));
  }

  const std::vector<GoldenRow> actual = compute_golden(workload);
  if (expected.size() != actual.size()) {
    std::fprintf(stderr,
                 "fgcs_golden: DRIFT — fixture has %zu rows, grid computes "
                 "%zu (grid changed without --regen?)\n",
                 expected.size(), actual.size());
    return 1;
  }
  std::size_t drifted = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const GoldenRow& want = expected[i];
    const GoldenRow& got = actual[i];
    if (want.machine != got.machine || want.target_day != got.target_day ||
        want.window_start != got.window_start ||
        want.window_length != got.window_length) {
      std::fprintf(stderr, "fgcs_golden: DRIFT — row %zu key mismatch: %s\n",
                   i, format_row(got).c_str());
      ++drifted;
      continue;
    }
    if (std::fabs(want.tr - got.tr) > kTolerance) {
      std::fprintf(stderr,
                   "fgcs_golden: DRIFT — %s day %lld start %lld len %lld: "
                   "fixture %.17g vs computed %.17g (|Δ| %.3g)\n",
                   got.machine.c_str(),
                   static_cast<long long>(got.target_day),
                   static_cast<long long>(got.window_start),
                   static_cast<long long>(got.window_length), want.tr, got.tr,
                   std::fabs(want.tr - got.tr));
      ++drifted;
    }
  }
  if (drifted > 0) {
    std::fprintf(stderr,
                 "fgcs_golden: %zu of %zu rows drifted — if intentional, "
                 "--regen and commit the new fixture\n",
                 drifted, actual.size());
    return 1;
  }
  std::printf("fgcs_golden: %zu rows match %s\n", actual.size(), path.c_str());
  return 0;
}

/// Proves end-to-end (format → parse → compare) that the suite would flag a
/// 1e-9 perturbation: round-trip every row exactly, then nudge each TR and
/// assert the comparison trips.
int selftest(const std::string& workload) {
  const std::vector<GoldenRow> rows = compute_golden(workload);
  if (rows.empty()) {
    std::fprintf(stderr, "fgcs_golden: selftest — empty grid\n");
    return 1;
  }
  for (const GoldenRow& row : rows) {
    const GoldenRow round = parse_row(format_row(row), "selftest");
    if (round.tr != row.tr) {
      std::fprintf(stderr,
                   "fgcs_golden: selftest FAILED — %.17g does not round-trip "
                   "(read back %.17g)\n",
                   row.tr, round.tr);
      return 1;
    }
    const double perturbed = row.tr + 1e-9;
    if (!(std::fabs(perturbed - round.tr) > kTolerance)) {
      std::fprintf(stderr,
                   "fgcs_golden: selftest FAILED — 1e-9 perturbation of "
                   "%.17g not detected\n",
                   row.tr);
      return 1;
    }
  }
  std::printf("fgcs_golden: selftest OK (%zu rows round-trip exactly; "
              "1e-9 perturbation detected on every row)\n",
              rows.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv, {"check", "regen", "selftest"});
    const bool do_regen = args.has("regen");
    const bool do_selftest = args.has("selftest");
    args.has("check");  // default mode; consume the flag if present
    const std::string path = args.get_or("file", kDefaultFixture);
    const std::string workload = args.get_or("workload", "lab");
    args.check_all_consumed();
    if (workload != "lab" && workload != "preemption") {
      std::fprintf(stderr, "fgcs_golden: unknown --workload '%s' "
                           "(use lab|preemption)\n",
                   workload.c_str());
      return 1;
    }
    if (do_selftest) return selftest(workload);
    if (do_regen) return regen(path, workload);
    return check(path, workload);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fgcs_golden: %s\n", error.what());
    return 1;
  }
}
