// Shared parser for prediction batch request files (used by fgcs_predict
// --batch and fgcs_metrics).
//
// Each non-empty, non-'#' line reads
//
//   TRACE_FILE HH:MM HOURS [DAY] [S1|S2]
//
// where DAY defaults to the day after the trace's recorded history and the
// initial state to the estimator's majority vote. Each distinct trace file
// is loaded once; the returned requests point into `traces`, whose map nodes
// give them stable MachineTrace addresses.
#pragma once

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/prediction_service.hpp"
#include "trace/machine_trace.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace fgcs::tools {

struct BatchFile {
  /// Keyed by trace file path. Must outlive `requests`, which point into it.
  std::map<std::string, MachineTrace> traces;
  std::vector<BatchRequest> requests;
};

/// Parses `path`. Throws DataError on unreadable files or malformed lines
/// (message carries file:line).
inline BatchFile load_batch_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw DataError("cannot open batch file " + path);

  BatchFile batch;
  std::string line;
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& what) {
    throw DataError(path + ":" + std::to_string(line_no) + ": " + what);
  };
  while (std::getline(file, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string trace_path;
    if (!(fields >> trace_path) || trace_path.front() == '#') continue;

    std::string start;
    std::int64_t hours = 0;
    if (!(fields >> start >> hours)) fail("expected TRACE HH:MM HOURS");
    auto it = batch.traces.find(trace_path);
    if (it == batch.traces.end())
      it = batch.traces
               .emplace(trace_path, MachineTrace::load_file(trace_path))
               .first;
    const MachineTrace& trace = it->second;

    PredictionRequest request;
    request.window.start_of_day = parse_time_of_day(start);
    request.window.length = hours * kSecondsPerHour;
    request.target_day = trace.day_count();
    const auto parse_state = [&](const std::string& token) {
      if (token == "S1") return State::kS1;
      if (token == "S2") return State::kS2;
      fail("initial state must be S1 or S2, got '" + token + "'");
      return State::kS1;  // unreachable
    };
    std::string token;
    if (fields >> token) {
      if (token == "S1" || token == "S2") {
        request.initial_state = parse_state(token);
      } else {
        try {
          request.target_day = std::stoll(token);
        } catch (const std::exception&) {
          fail("expected a day number or S1/S2, got '" + token + "'");
        }
        if (fields >> token) request.initial_state = parse_state(token);
      }
    }
    batch.requests.push_back(BatchRequest{.trace = &trace, .request = request});
  }
  return batch;
}

}  // namespace fgcs::tools
