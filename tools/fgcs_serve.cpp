// fgcs_serve — serve TR predictions over the binary wire protocol.
//
//   fgcs_serve [--host H] [--port P] [--reactors N] [--training-days N]
//              [--threads N] [--load-root DIR] [--max-requests N]
//              [--ingest] [--retention N] [--metrics]
//              [--node-id ID [--peers ID=H:P,...] [--gossip-interval MS]
//               [--vnodes N]] TRACE...
//
// Loads each positional trace file into a PredictionServer backed by one
// memoized PredictionService and serves request frames (see DESIGN.md §9)
// until interrupted or until --max-requests request frames have been
// answered. Clients name machines by the loaded machine id; with
// --load-root DIR they may also name trace file paths, which the server
// loads on demand but only from under DIR (off by default — serving
// arbitrary server-side files to any connected client is opt-in). With
// --ingest the server also accepts kAppendSamples frames: monitors stream
// packed samples, machines auto-register on first contact, every closed day
// refreshes the prediction cache, and --retention N bounds each streamed
// machine's history to a sliding N-day window (0 = unlimited).
//
// Decentralized registry (DESIGN.md §11, bring-up walkthrough in
// docs/OPERATIONS.md): --node-id joins this server to a registry ring under
// that identity. --peers seeds the membership (comma-separated ID=HOST:PORT
// contacts); every --gossip-interval milliseconds the server runs one
// anti-entropy round — tick the agent, push kGossipSync to the selected
// peers, merge their acks — and republishes the resulting ring to its
// reactors, so request batches for keys the ring assigns elsewhere are
// answered with kWrongShard (the client re-routes). --vnodes tunes ring
// smoothness (HashRing contract).
//
//   fgcs_serve --selfcheck [--port P]
//
// Self-check mode: binds an ephemeral (or given) port, serves a synthetic
// fleet to an in-process PredictionClient, and verifies the served
// Predictions are bit-identical to the same service called in-process —
// cold and warm. Exits 0 on success; this is the tool's smoke test.
#include <csignal>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fgcs.hpp"
#include "util/cli.hpp"

namespace {

using namespace fgcs;

volatile std::sig_atomic_t g_interrupted = 0;

void handle_signal(int) { g_interrupted = 1; }

/// Parses the --peers grammar "id=host:port,id=host:port" into bootstrap
/// member records. Throws DataError on any malformed entry.
std::vector<MemberState> parse_peers(const std::string& spec) {
  std::vector<MemberState> peers;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    const std::size_t colon = entry.rfind(':');
    if (eq == std::string::npos || colon == std::string::npos || colon < eq ||
        eq == 0 || colon == eq + 1 || colon + 1 == entry.size())
      throw DataError("fgcs_serve: malformed --peers entry '" + entry +
                      "' (want ID=HOST:PORT)");
    MemberState peer;
    peer.node_id = entry.substr(0, eq);
    peer.host = entry.substr(eq + 1, colon - eq - 1);
    const int port = std::stoi(entry.substr(colon + 1));
    if (port < 1 || port > 65535)
      throw DataError("fgcs_serve: peer port out of range in '" + entry + "'");
    peer.port = static_cast<std::uint16_t>(port);
    peers.push_back(std::move(peer));
  }
  return peers;
}

/// One anti-entropy round over the wire: tick, push the sync to each
/// selected peer (endpoints from the agent's own member table), merge acks,
/// republish the ring to the reactors. Unreachable peers just miss the
/// round — phi accrual marks them suspect/dead if it keeps happening.
void gossip_round(net::PredictionServer& server,
                  std::map<std::string, std::unique_ptr<net::PredictionClient>>&
                      peer_clients) {
  const auto [peers, sync] = server.gossip_tick();
  for (const std::string& peer_id : peers) {
    const MemberState* peer = nullptr;
    for (const MemberState& member : sync.members)
      if (member.node_id == peer_id) peer = &member;
    if (peer == nullptr || peer->port == 0) continue;
    try {
      auto it = peer_clients.find(peer_id);
      if (it == peer_clients.end()) {
        net::ClientConfig config;
        config.host = peer->host;
        config.port = peer->port;
        config.connect_timeout = 2.0;
        config.request_timeout = 5.0;
        config.max_attempts = 1;  // phi handles persistent failure, not retries
        it = peer_clients
                 .emplace(peer_id,
                          std::make_unique<net::PredictionClient>(config))
                 .first;
      }
      server.gossip_merge_ack(it->second->gossip_sync(sync));
    } catch (const std::exception&) {
      // Unreachable this round; drop the cached client so the next attempt
      // reconnects cleanly.
      peer_clients.erase(peer_id);
    }
  }
  server.set_ring(server.gossip_ring());
}

int selfcheck(std::uint16_t port) {
  WorkloadParams params;
  params.sampling_period = 60;
  const std::vector<MachineTrace> fleet =
      generate_fleet(params, /*seed=*/20060619, /*count=*/2, /*days=*/12,
                     "selfcheck");

  const auto service = std::make_shared<PredictionService>();
  net::ServerConfig server_config;
  server_config.port = port;
  net::PredictionServer server(server_config, service);
  for (const MachineTrace& trace : fleet) server.add_trace(trace);
  server.start();
  std::printf("fgcs_serve: selfcheck listening on %s:%u\n",
              server.host().c_str(), server.port());

  net::ClientConfig client_config;
  client_config.port = server.port();
  net::PredictionClient client(client_config);

  std::vector<net::WireRequestItem> items;
  for (const MachineTrace& trace : fleet)
    for (const SimTime start_hour : {9, 14})
      items.push_back(net::WireRequestItem{
          .machine_key = trace.machine_id(),
          .request = {.target_day = trace.day_count(),
                      .window = {.start_of_day = start_hour * kSecondsPerHour,
                                 .length = 2 * kSecondsPerHour}}});

  // In-process reference through a *separate* service instance, so the
  // comparison crosses the wire plus an independent cache.
  PredictionService reference;
  std::vector<Prediction> expected;
  for (const net::WireRequestItem& item : items) {
    const MachineTrace* trace = nullptr;
    for (const MachineTrace& t : fleet)
      if (t.machine_id() == item.machine_key) trace = &t;
    expected.push_back(reference.predict(*trace, item.request));
  }

  for (const char* pass : {"cold", "warm"}) {
    const std::vector<Prediction> served = client.predict_batch(items);
    for (std::size_t i = 0; i < served.size(); ++i) {
      if (served[i].temporal_reliability != expected[i].temporal_reliability ||
          served[i].initial_state != expected[i].initial_state ||
          served[i].p_absorb != expected[i].p_absorb ||
          served[i].steps != expected[i].steps) {
        std::fprintf(stderr,
                     "fgcs_serve: selfcheck FAILED (%s pass, request %zu): "
                     "served TR %.17g != in-process %.17g\n",
                     pass, i, served[i].temporal_reliability,
                     expected[i].temporal_reliability);
        return 1;
      }
    }
    std::printf("fgcs_serve: selfcheck %s pass OK (%zu predictions, "
                "bit-identical)\n",
                pass, served.size());
  }
  server.stop();  // join first: quiesces the counters the report reads
  const net::ServerStats stats = server.stats();
  std::printf("fgcs_serve: selfcheck served %llu frames, %llu predictions, "
              "rx %llu tx %llu bytes\n",
              static_cast<unsigned long long>(stats.frames),
              static_cast<unsigned long long>(stats.predictions),
              static_cast<unsigned long long>(stats.rx_bytes),
              static_cast<unsigned long long>(stats.tx_bytes));
  return 0;
}

int main_checked(int argc, char** argv) {
  const ArgParser args(argc, argv, {"selfcheck", "metrics", "ingest"});
  if (args.has("selfcheck")) {
    const auto port = static_cast<std::uint16_t>(args.get_int_or("port", 0));
    args.check_all_consumed();
    return selfcheck(port);
  }

  ServiceConfig service_config;
  service_config.estimator.training_days =
      static_cast<std::size_t>(args.get_int_or("training-days", 15));
  service_config.max_threads =
      static_cast<unsigned>(args.get_int_or("threads", 0));

  net::ServerConfig server_config;
  server_config.host = args.get_or("host", "127.0.0.1");
  server_config.port = static_cast<std::uint16_t>(args.get_int_or("port", 7070));
  server_config.reactors =
      static_cast<unsigned>(args.get_int_or("reactors", 1));
  server_config.trace_root = args.get_or("load-root", "");
  server_config.ingest = args.has("ingest");
  server_config.ingest_retention_days = args.get_int_or("retention", 0);
  server_config.node_id = args.get_or("node-id", "");
  const std::vector<MemberState> peers = parse_peers(args.get_or("peers", ""));
  const std::int64_t gossip_interval_ms =
      args.get_int_or("gossip-interval", 1000);
  const auto vnodes = static_cast<std::uint32_t>(args.get_int_or("vnodes", 128));
  const std::int64_t max_requests = args.get_int_or("max-requests", 0);
  const bool want_metrics = args.has("metrics");
  args.check_all_consumed();
  if (server_config.node_id.empty() && !peers.empty())
    throw DataError("fgcs_serve: --peers requires --node-id");

  const auto service = std::make_shared<PredictionService>(service_config);
  net::PredictionServer server(server_config, service);
  for (const std::string& path : args.positional()) {
    server.add_trace(MachineTrace::load_file(path));
    std::printf("fgcs_serve: loaded %s\n", path.c_str());
  }
  if (args.positional().empty() && server_config.trace_root.empty() &&
      !server_config.ingest) {
    std::fprintf(stderr,
                 "fgcs_serve: no traces, no --load-root, and no --ingest "
                 "would serve nothing\n");
    return 1;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  server.start();

  // Registry membership: the agent is created after start() so its member
  // record carries the real bound port, seeded with the bootstrap peers.
  std::optional<GossipAgent> gossip;
  std::map<std::string, std::unique_ptr<net::PredictionClient>> peer_clients;
  if (!server_config.node_id.empty()) {
    MemberState self;
    self.node_id = server_config.node_id;
    self.host = server_config.host;
    self.port = server.port();
    GossipConfig gossip_config;
    gossip_config.vnodes = vnodes;
    gossip.emplace(std::move(self), gossip_config);
    for (const MemberState& peer : peers) gossip->seed_peer(peer);
    server.attach_gossip(&*gossip);
    server.set_ring(gossip->ring());
    std::printf("fgcs_serve: registry node '%s' (%zu bootstrap peer%s, "
                "%u vnodes)\n",
                server_config.node_id.c_str(), peers.size(),
                peers.size() == 1 ? "" : "s", vnodes);
  }
  // Unbuffered so a parent process piping our stdout sees the port line
  // immediately (tests/net/net_tools_test.cpp parses it).
  std::printf("fgcs_serve: listening on %s:%u (%zu traces, %u reactor%s%s)\n",
              server.host().c_str(), server.port(), args.positional().size(),
              server.reactor_count(), server.reactor_count() == 1 ? "" : "s",
              server_config.ingest ? ", ingest on" : "");
  std::fflush(stdout);

  auto next_gossip = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(gossip_interval_ms);
  while (!g_interrupted) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (gossip.has_value() && std::chrono::steady_clock::now() >= next_gossip) {
      gossip_round(server, peer_clients);
      next_gossip += std::chrono::milliseconds(gossip_interval_ms);
    }
    if (max_requests > 0 &&
        server.stats().requests >= static_cast<std::uint64_t>(max_requests))
      break;
  }

  server.stop();
  if (gossip.has_value()) {
    server.attach_gossip(nullptr);
    const HashRing ring = gossip->ring();
    std::printf("fgcs_serve: gossip ran %llu rounds, ring has %zu member%s "
                "(digest %016llx)\n",
                static_cast<unsigned long long>(gossip->round()), ring.size(),
                ring.size() == 1 ? "" : "s",
                static_cast<unsigned long long>(gossip->digest()));
  }
  const net::ServerStats stats = server.stats();
  std::printf("fgcs_serve: served %llu requests (%llu predictions, "
              "%llu errors), rx %llu tx %llu bytes\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.predictions),
              static_cast<unsigned long long>(stats.errors),
              static_cast<unsigned long long>(stats.rx_bytes),
              static_cast<unsigned long long>(stats.tx_bytes));
  if (server_config.ingest)
    std::printf("fgcs_serve: ingested %llu appends (%llu samples, "
                "%llu duplicates), closed %llu days, retired %llu\n",
                static_cast<unsigned long long>(stats.appends),
                static_cast<unsigned long long>(stats.append_samples),
                static_cast<unsigned long long>(stats.append_duplicates),
                static_cast<unsigned long long>(stats.days_closed),
                static_cast<unsigned long long>(stats.days_retired));
  if (want_metrics)
    std::printf("\n%s", MetricsRegistry::global().render_text().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return main_checked(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fgcs_serve: %s\n", error.what());
    return 1;
  }
}
