// fgcs_predict — temporal reliability of a recorded machine for a window.
//
//   fgcs_predict --trace FILE --start HH:MM --hours H
//                [--day N]            target day (default: day after history)
//                [--training-days N]  recent same-type days used (default 15)
//                [--init S1|S2]       observed state at submission
//                [--analysis]         also print MTTF and failure-mode split
//
// Batch mode routes many requests through one PredictionService (memoized
// Q/H estimation, thread-pool fan-out) and prints one TR line per request —
// identical values to running the per-call path on each line:
//
//   fgcs_predict --batch FILE [--training-days N] [--threads N]
//
// where each non-empty, non-'#' line of FILE reads
//
//   TRACE_FILE HH:MM HOURS [DAY] [S1|S2]
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "fgcs.hpp"
#include "util/cli.hpp"

namespace {

int run_batch(const fgcs::ArgParser& args) {
  using namespace fgcs;
  const std::string path = args.get("batch");

  ServiceConfig config;
  config.estimator.training_days =
      static_cast<std::size_t>(args.get_int_or("training-days", 15));
  config.max_threads = static_cast<unsigned>(args.get_int_or("threads", 0));
  args.check_all_consumed();

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "fgcs_predict: cannot open batch file %s\n",
                 path.c_str());
    return 1;
  }

  // Each distinct trace file is loaded once; map nodes give the requests
  // stable MachineTrace addresses.
  std::map<std::string, MachineTrace> traces;
  std::vector<BatchRequest> requests;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string trace_path;
    if (!(fields >> trace_path) || trace_path.front() == '#') continue;

    std::string start;
    std::int64_t hours = 0;
    if (!(fields >> start >> hours)) {
      std::fprintf(stderr, "fgcs_predict: %s:%zu: expected TRACE HH:MM HOURS\n",
                   path.c_str(), line_no);
      return 1;
    }
    auto it = traces.find(trace_path);
    if (it == traces.end())
      it = traces.emplace(trace_path, MachineTrace::load_file(trace_path))
               .first;
    const MachineTrace& trace = it->second;

    PredictionRequest request;
    request.window.start_of_day = parse_time_of_day(start);
    request.window.length = hours * kSecondsPerHour;
    request.target_day = trace.day_count();
    const auto parse_state = [&](const std::string& token) {
      if (token == "S1") return State::kS1;
      if (token == "S2") return State::kS2;
      std::fprintf(stderr, "fgcs_predict: %s:%zu: initial state must be S1 "
                           "or S2, got '%s'\n",
                   path.c_str(), line_no, token.c_str());
      std::exit(1);
    };
    std::string token;
    if (fields >> token) {
      if (token == "S1" || token == "S2") {
        request.initial_state = parse_state(token);
      } else {
        try {
          request.target_day = std::stoll(token);
        } catch (const std::exception&) {
          std::fprintf(stderr, "fgcs_predict: %s:%zu: expected a day number "
                               "or S1/S2, got '%s'\n",
                       path.c_str(), line_no, token.c_str());
          return 1;
        }
        if (fields >> token) request.initial_state = parse_state(token);
      }
    }
    requests.push_back(BatchRequest{.trace = &trace, .request = request});
  }

  PredictionService service(config);
  const std::vector<Prediction> predictions = service.predict_batch(requests);
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const BatchRequest& request = requests[i];
    std::printf("%-12s day %-4lld %-12s TR %.4f\n",
                request.trace->machine_id().c_str(),
                static_cast<long long>(request.request.target_day),
                request.request.window.describe().c_str(),
                predictions[i].temporal_reliability);
  }
  const ServiceStats stats = service.stats();
  std::printf("# service: %llu requests, %llu misses, %llu cached, "
              "%.1f ms estimating + %.1f ms solving\n",
              static_cast<unsigned long long>(stats.lookups),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.hits + stats.partial_hits),
              1e3 * stats.estimate_seconds, 1e3 * stats.solve_seconds);
  std::printf("# pool: %u workers (%s), %llu tasks, %llu steals, "
              "queue high-water %llu, %.1f%% busy\n",
              stats.pool.workers,
              stats.pool.started ? "started" : "never started",
              static_cast<unsigned long long>(stats.pool.tasks_executed),
              static_cast<unsigned long long>(stats.pool.steals),
              static_cast<unsigned long long>(stats.pool.queue_depth_high_water),
              100.0 * stats.pool.utilization());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fgcs;
  try {
    const ArgParser args(argc, argv, {"analysis"});
    if (args.has("batch")) return run_batch(args);
    const MachineTrace trace = MachineTrace::load_file(args.get("trace"));

    TimeWindow window;
    window.start_of_day = parse_time_of_day(args.get("start"));
    window.length = args.get_int("hours") * kSecondsPerHour;

    EstimatorConfig config;
    config.training_days =
        static_cast<std::size_t>(args.get_int_or("training-days", 15));

    PredictionRequest request;
    request.target_day = args.get_int_or("day", trace.day_count());
    request.window = window;
    if (args.has("init")) {
      const std::string init = args.get("init");
      if (init == "S1") request.initial_state = State::kS1;
      else if (init == "S2") request.initial_state = State::kS2;
      else {
        std::fprintf(stderr, "--init must be S1 or S2\n");
        return 1;
      }
    }
    const bool want_analysis = args.has("analysis");
    args.check_all_consumed();

    const AvailabilityPredictor predictor(config);
    const Prediction p = predictor.predict(trace, request);

    std::printf("machine      : %s\n", trace.machine_id().c_str());
    std::printf("window       : day %lld, %s (%s)\n",
                static_cast<long long>(request.target_day),
                window.describe().c_str(),
                to_string(trace.day_type(request.target_day)));
    std::printf("training days: %zu, initial state %s\n",
                p.training_days_used, to_string(p.initial_state));
    std::printf("TR           : %.4f\n", p.temporal_reliability);
    std::printf("P(S3 cpu)    : %.4f\n", p.p_absorb[0]);
    std::printf("P(S4 memory) : %.4f\n", p.p_absorb[1]);
    std::printf("P(S5 revoked): %.4f\n", p.p_absorb[2]);
    std::printf("cost         : %.2f ms estimate + %.2f ms solve\n",
                1e3 * p.estimate_seconds, 1e3 * p.solve_seconds);

    if (want_analysis) {
      const SmpEstimator estimator(config);
      const SmpModel model =
          estimator.estimate(trace, request.target_day, window);
      const FailureAnalysis analysis =
          analyze_failure(model, p.initial_state, p.steps);
      const double period = static_cast<double>(trace.sampling_period());
      std::printf("\nmean time to failure (capped at window): %.1f minutes\n",
                  analysis.mean_ticks_to_failure * period / 60.0);
      std::printf("dominant outcome: %s\n",
                  analysis.dominant_outcome == State::kS1
                      ? "survival"
                      : to_string(analysis.dominant_outcome));
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fgcs_predict: %s\n", error.what());
    return 1;
  }
}
