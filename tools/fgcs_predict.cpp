// fgcs_predict — temporal reliability of a recorded machine for a window.
//
//   fgcs_predict --trace FILE --start HH:MM --hours H
//                [--day N]            target day (default: day after history)
//                [--training-days N]  recent same-type days used (default 15)
//                [--init S1|S2]       observed state at submission
//                [--analysis]         also print MTTF and failure-mode split
//
// Batch mode routes many requests through one PredictionService (memoized
// Q/H estimation, thread-pool fan-out) and prints one TR line per request —
// identical values to running the per-call path on each line:
//
//   fgcs_predict --batch FILE [--training-days N] [--threads N] [--metrics]
//
// where each non-empty, non-'#' line of FILE reads
//
//   TRACE_FILE HH:MM HOURS [DAY] [S1|S2]
//
// --metrics appends the process-wide Prometheus-style exposition
// (MetricsRegistry::render_text(), DESIGN.md §8) after the batch report.
#include <cstdio>
#include <string>
#include <vector>

#include "batch_file.hpp"
#include "core/analysis.hpp"
#include "fgcs.hpp"
#include "util/cli.hpp"
#include "util/metrics.hpp"

namespace {

int run_batch(const fgcs::ArgParser& args) {
  using namespace fgcs;
  const std::string path = args.get("batch");

  ServiceConfig config;
  config.estimator.training_days =
      static_cast<std::size_t>(args.get_int_or("training-days", 15));
  config.max_threads = static_cast<unsigned>(args.get_int_or("threads", 0));
  const bool want_metrics = args.has("metrics");
  args.check_all_consumed();

  const tools::BatchFile batch = tools::load_batch_file(path);

  PredictionService service(config);
  const std::vector<Prediction> predictions =
      service.predict_batch(batch.requests);
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const BatchRequest& request = batch.requests[i];
    std::printf("%-12s day %-4lld %-12s TR %.4f\n",
                request.trace->machine_id().c_str(),
                static_cast<long long>(request.request.target_day),
                request.request.window.describe().c_str(),
                predictions[i].temporal_reliability);
  }
  const ServiceStats stats = service.stats();
  std::printf("# service: %llu requests, %llu misses, %llu cached, "
              "%.1f ms estimating + %.1f ms solving\n",
              static_cast<unsigned long long>(stats.lookups),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.hits + stats.partial_hits),
              1e3 * stats.estimate_seconds, 1e3 * stats.solve_seconds);
  std::printf("# pool: %u workers (%s), %llu tasks, %llu steals, "
              "queue high-water %llu, %.1f%% busy\n",
              stats.pool.workers,
              stats.pool.started ? "started" : "never started",
              static_cast<unsigned long long>(stats.pool.tasks_executed),
              static_cast<unsigned long long>(stats.pool.steals),
              static_cast<unsigned long long>(stats.pool.queue_depth_high_water),
              100.0 * stats.pool.utilization());
  if (want_metrics) {
    // Dump while `service` is alive so its attachments are still folded in.
    std::printf("\n%s", MetricsRegistry::global().render_text().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fgcs;
  try {
    const ArgParser args(argc, argv, {"analysis", "metrics"});
    if (args.has("batch")) return run_batch(args);
    const MachineTrace trace = MachineTrace::load_file(args.get("trace"));

    TimeWindow window;
    window.start_of_day = parse_time_of_day(args.get("start"));
    window.length = args.get_int("hours") * kSecondsPerHour;

    EstimatorConfig config;
    config.training_days =
        static_cast<std::size_t>(args.get_int_or("training-days", 15));

    PredictionRequest request;
    request.target_day = args.get_int_or("day", trace.day_count());
    request.window = window;
    if (args.has("init")) {
      const std::string init = args.get("init");
      if (init == "S1") request.initial_state = State::kS1;
      else if (init == "S2") request.initial_state = State::kS2;
      else {
        std::fprintf(stderr, "--init must be S1 or S2\n");
        return 1;
      }
    }
    const bool want_analysis = args.has("analysis");
    args.check_all_consumed();

    const AvailabilityPredictor predictor(config);
    const Prediction p = predictor.predict(trace, request);

    std::printf("machine      : %s\n", trace.machine_id().c_str());
    std::printf("window       : day %lld, %s (%s)\n",
                static_cast<long long>(request.target_day),
                window.describe().c_str(),
                to_string(trace.day_type(request.target_day)));
    std::printf("training days: %zu, initial state %s\n",
                p.training_days_used, to_string(p.initial_state));
    std::printf("TR           : %.4f\n", p.temporal_reliability);
    std::printf("P(S3 cpu)    : %.4f\n", p.p_absorb[0]);
    std::printf("P(S4 memory) : %.4f\n", p.p_absorb[1]);
    std::printf("P(S5 revoked): %.4f\n", p.p_absorb[2]);
    std::printf("cost         : %.2f ms estimate + %.2f ms solve\n",
                1e3 * p.estimate_seconds, 1e3 * p.solve_seconds);

    if (want_analysis) {
      const SmpEstimator estimator(config);
      const SmpModel model =
          estimator.estimate(trace, request.target_day, window);
      const FailureAnalysis analysis =
          analyze_failure(model, p.initial_state, p.steps);
      const double period = static_cast<double>(trace.sampling_period());
      std::printf("\nmean time to failure (capped at window): %.1f minutes\n",
                  analysis.mean_ticks_to_failure * period / 60.0);
      std::printf("dominant outcome: %s\n",
                  analysis.dominant_outcome == State::kS1
                      ? "survival"
                      : to_string(analysis.dominant_outcome));
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fgcs_predict: %s\n", error.what());
    return 1;
  }
}
