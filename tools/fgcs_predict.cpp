// fgcs_predict — temporal reliability of a recorded machine for a window.
//
//   fgcs_predict --trace FILE --start HH:MM --hours H
//                [--day N]            target day (default: day after history)
//                [--training-days N]  recent same-type days used (default 15)
//                [--init S1|S2]       observed state at submission
//                [--analysis]         also print MTTF and failure-mode split
//
// Batch mode routes many requests through one PredictionService (memoized
// Q/H estimation, thread-pool fan-out) and prints one TR line per request —
// identical values to running the per-call path on each line:
//
//   fgcs_predict --batch FILE [--training-days N] [--threads N] [--metrics]
//
// where each non-empty, non-'#' line of FILE reads
//
//   TRACE_FILE HH:MM HOURS [DAY] [S1|S2]
//
// --metrics appends the process-wide Prometheus-style exposition
// (MetricsRegistry::render_text(), DESIGN.md §8) after the batch report.
//
// Remote mode ships the same batch file to a running fgcs_serve instead of
// predicting in-process (DESIGN.md §9); machines are named over the wire by
// their trace file path exactly as written in the batch file, so against a
// server sharing this filesystem and started with --load-root covering
// those paths the output TR lines are identical:
//
//   fgcs_predict --batch FILE --connect HOST:PORT [--timeout SECONDS]
#include <cstdio>
#include <string>
#include <vector>

#include "net/client.hpp"

#include "batch_file.hpp"
#include "core/analysis.hpp"
#include "fgcs.hpp"
#include "util/cli.hpp"
#include "util/metrics.hpp"

namespace {

int run_connect(const fgcs::ArgParser& args) {
  using namespace fgcs;
  const std::string endpoint = args.get("connect");
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    std::fprintf(stderr, "fgcs_predict: --connect wants HOST:PORT, got %s\n",
                 endpoint.c_str());
    return 1;
  }

  net::ClientConfig config;
  config.host = endpoint.substr(0, colon);
  config.port = static_cast<std::uint16_t>(std::stoi(endpoint.substr(colon + 1)));
  config.request_timeout = args.get_double_or("timeout", 30.0);
  const std::string path = args.get("batch");
  args.check_all_consumed();

  // The batch file is parsed locally for the same reason it is parsed by
  // --batch: per-line defaults (target day = day after the trace's history)
  // come from the trace itself. The wire request then names each machine by
  // the trace *path* as written, which the server resolves on its side.
  const tools::BatchFile batch = tools::load_batch_file(path);
  std::map<const MachineTrace*, std::string> paths;
  for (const auto& [trace_path, trace] : batch.traces)
    paths[&trace] = trace_path;

  std::vector<net::WireRequestItem> items;
  items.reserve(batch.requests.size());
  for (const BatchRequest& request : batch.requests)
    items.push_back(net::WireRequestItem{.machine_key = paths[request.trace],
                                         .request = request.request});

  net::PredictionClient client(config);
  const std::vector<Prediction> predictions = client.predict_batch(items);
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const BatchRequest& request = batch.requests[i];
    std::printf("%-12s day %-4lld %-12s TR %.4f\n",
                request.trace->machine_id().c_str(),
                static_cast<long long>(request.request.target_day),
                request.request.window.describe().c_str(),
                predictions[i].temporal_reliability);
  }
  const net::ClientStats& stats = client.stats();
  std::printf("# net: %s:%u, %llu attempts (%llu retries), "
              "%llu server errors\n",
              config.host.c_str(), config.port,
              static_cast<unsigned long long>(stats.attempts),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.server_errors));
  return 0;
}

int run_batch(const fgcs::ArgParser& args) {
  using namespace fgcs;
  const std::string path = args.get("batch");

  ServiceConfig config;
  config.estimator.training_days =
      static_cast<std::size_t>(args.get_int_or("training-days", 15));
  config.max_threads = static_cast<unsigned>(args.get_int_or("threads", 0));
  const bool want_metrics = args.has("metrics");
  args.check_all_consumed();

  const tools::BatchFile batch = tools::load_batch_file(path);

  PredictionService service(config);
  const std::vector<Prediction> predictions =
      service.predict_batch(batch.requests);
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const BatchRequest& request = batch.requests[i];
    std::printf("%-12s day %-4lld %-12s TR %.4f\n",
                request.trace->machine_id().c_str(),
                static_cast<long long>(request.request.target_day),
                request.request.window.describe().c_str(),
                predictions[i].temporal_reliability);
  }
  const ServiceStats stats = service.stats();
  std::printf("# service: %llu requests, %llu misses, %llu cached, "
              "%.1f ms estimating + %.1f ms solving\n",
              static_cast<unsigned long long>(stats.lookups),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.hits + stats.partial_hits),
              1e3 * stats.estimate_seconds, 1e3 * stats.solve_seconds);
  std::printf("# pool: %u workers (%s), %llu tasks, %llu steals, "
              "queue high-water %llu, %.1f%% busy\n",
              stats.pool.workers,
              stats.pool.started ? "started" : "never started",
              static_cast<unsigned long long>(stats.pool.tasks_executed),
              static_cast<unsigned long long>(stats.pool.steals),
              static_cast<unsigned long long>(stats.pool.queue_depth_high_water),
              100.0 * stats.pool.utilization());
  if (want_metrics) {
    // Dump while `service` is alive so its attachments are still folded in.
    std::printf("\n%s", MetricsRegistry::global().render_text().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fgcs;
  try {
    const ArgParser args(argc, argv, {"analysis", "metrics"});
    if (args.has("connect")) return run_connect(args);
    if (args.has("batch")) return run_batch(args);
    const MachineTrace trace = MachineTrace::load_file(args.get("trace"));

    TimeWindow window;
    window.start_of_day = parse_time_of_day(args.get("start"));
    window.length = args.get_int("hours") * kSecondsPerHour;

    EstimatorConfig config;
    config.training_days =
        static_cast<std::size_t>(args.get_int_or("training-days", 15));

    PredictionRequest request;
    request.target_day = args.get_int_or("day", trace.day_count());
    request.window = window;
    if (args.has("init")) {
      const std::string init = args.get("init");
      if (init == "S1") request.initial_state = State::kS1;
      else if (init == "S2") request.initial_state = State::kS2;
      else {
        std::fprintf(stderr, "--init must be S1 or S2\n");
        return 1;
      }
    }
    const bool want_analysis = args.has("analysis");
    args.check_all_consumed();

    const AvailabilityPredictor predictor(config);
    const Prediction p = predictor.predict(trace, request);

    std::printf("machine      : %s\n", trace.machine_id().c_str());
    std::printf("window       : day %lld, %s (%s)\n",
                static_cast<long long>(request.target_day),
                window.describe().c_str(),
                to_string(trace.day_type(request.target_day)));
    std::printf("training days: %zu, initial state %s\n",
                p.training_days_used, to_string(p.initial_state));
    std::printf("TR           : %.4f\n", p.temporal_reliability);
    std::printf("P(S3 cpu)    : %.4f\n", p.p_absorb[0]);
    std::printf("P(S4 memory) : %.4f\n", p.p_absorb[1]);
    std::printf("P(S5 revoked): %.4f\n", p.p_absorb[2]);
    std::printf("cost         : %.2f ms estimate + %.2f ms solve\n",
                1e3 * p.estimate_seconds, 1e3 * p.solve_seconds);

    if (want_analysis) {
      const SmpEstimator estimator(config);
      const SmpModel model =
          estimator.estimate(trace, request.target_day, window);
      const FailureAnalysis analysis =
          analyze_failure(model, p.initial_state, p.steps);
      const double period = static_cast<double>(trace.sampling_period());
      std::printf("\nmean time to failure (capped at window): %.1f minutes\n",
                  analysis.mean_ticks_to_failure * period / 60.0);
      std::printf("dominant outcome: %s\n",
                  analysis.dominant_outcome == State::kS1
                      ? "survival"
                      : to_string(analysis.dominant_outcome));
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fgcs_predict: %s\n", error.what());
    return 1;
  }
}
