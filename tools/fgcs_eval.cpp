// fgcs_eval — accuracy report for a recorded trace.
//
//   fgcs_eval --trace FILE [--split 0.5] [--training-days 15]
//
// Splits the trace into training/test halves and reports, per window length,
// the relative error of the SMP-predicted TR against the empirical TR over
// the test days (the paper's Fig. 5 protocol), with a Wilson 95% interval on
// the empirical TR so model error can be separated from sampling noise.
#include <cstdio>
#include <iostream>

#include "core/analysis.hpp"
#include "fgcs.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fgcs;
  try {
    const ArgParser args(argc, argv);
    const MachineTrace trace = MachineTrace::load_file(args.get("trace"));
    const double split = args.get_double_or("split", 0.5);
    EstimatorConfig config;
    config.training_days =
        static_cast<std::size_t>(args.get_int_or("training-days", 15));
    args.check_all_consumed();

    if (split <= 0.0 || split >= 1.0) {
      std::fprintf(stderr, "--split must be in (0, 1)\n");
      return 1;
    }

    const AvailabilityPredictor predictor(config);
    const StateClassifier classifier(config.thresholds, trace.sampling_period());
    const auto split_day =
        static_cast<std::int64_t>(split * static_cast<double>(trace.day_count()));

    for (const DayType type : {DayType::kWeekday, DayType::kWeekend}) {
      print_banner(std::cout, std::string("accuracy on ") + to_string(type) +
                                  "s — " + trace.machine_id());
      Table table({"window_len_hr", "avg_err", "max_err", "in_95ci", "windows"});
      for (SimTime len_hr = 1; len_hr <= 10; ++len_hr) {
        RunningStats errors;
        std::size_t in_ci = 0, total = 0;
        for (SimTime start_hr = 0; start_hr < 24; ++start_hr) {
          const TimeWindow window{.start_of_day = start_hr * kSecondsPerHour,
                                  .length = len_hr * kSecondsPerHour};
          const auto test_days =
              trace.days_of_type(type, split_day, trace.day_count());
          if (test_days.empty()) continue;
          Prediction p;
          try {
            p = predictor.predict(
                trace, {.target_day = test_days.front(), .window = window});
          } catch (const PreconditionError&) {
            continue;
          }
          const EmpiricalTr emp =
              empirical_tr(trace, test_days, window, classifier);
          if (!emp.tr || *emp.tr <= 0.0) continue;
          errors.add(relative_error(p.temporal_reliability, *emp.tr));
          const ConfidenceInterval ci =
              wilson_interval(emp.surviving_days, emp.eligible_days);
          ++total;
          if (ci.contains(p.temporal_reliability)) ++in_ci;
        }
        if (errors.empty()) continue;
        table.add_row({std::to_string(len_hr), Table::pct(errors.mean()),
                       Table::pct(errors.max()),
                       std::to_string(in_ci) + "/" + std::to_string(total),
                       std::to_string(errors.count())});
      }
      table.print(std::cout);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fgcs_eval: %s\n", error.what());
    return 1;
  }
}
