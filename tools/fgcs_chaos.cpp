// fgcs_chaos — replay named fault-injection scenarios deterministically.
//
//   fgcs_chaos --scenario revocation|churn|planner|registry|service|net|
//                         ingest|gossip
//              [--seed S] [--machines N] [--days D] [--jobs J]
//              [--reactors N] [--failpoints SPEC]
//
// Each scenario generates a synthetic fleet from --seed, arms a scenario
// default FGCS_FAILPOINTS spec (overridable with --failpoints), submits
// --jobs guest jobs, and prints the outcomes followed by the exact failpoint
// activity (FailpointStats). Same flags → byte-identical output, which makes
// the tool usable both for debugging degraded modes and as a regression
// oracle in scripts.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fgcs.hpp"
#include "ishare/gossip.hpp"
#include "util/cli.hpp"
#include "util/failpoint.hpp"

namespace {

using namespace fgcs;

struct ScenarioSetup {
  std::vector<MachineTrace> traces;
  std::vector<Gateway> gateways;
  Registry registry;
  std::shared_ptr<PredictionService> service;
};

ScenarioSetup build_fleet(std::uint64_t seed, int machines, int days,
                          bool with_service) {
  ScenarioSetup setup;
  WorkloadParams params;
  setup.traces = generate_fleet(params, seed, machines, days, "chaos");
  if (with_service) setup.service = std::make_shared<PredictionService>();
  setup.gateways.reserve(setup.traces.size());
  for (const MachineTrace& trace : setup.traces)
    setup.gateways.emplace_back(trace, Thresholds{}, EstimatorConfig{},
                                setup.service);
  for (Gateway& gateway : setup.gateways) setup.registry.publish(gateway);
  return setup;
}

void print_outcome(int job, const JobOutcome& outcome) {
  std::printf(
      "job %02d: %s attempts=%d failures=%d checkpoints=%d response=%llds\n",
      job, outcome.completed ? "completed" : "FAILED", outcome.attempts,
      outcome.failures, outcome.checkpoints_taken,
      static_cast<long long>(outcome.response_time()));
}

void print_stats() {
  const FailpointStats stats = Failpoints::instance().stats();
  std::printf("failpoints (%llu fires total):\n",
              static_cast<unsigned long long>(stats.total_fires()));
  for (const FailpointCounters& point : stats.points)
    std::printf("  %-32s evaluations=%llu fires=%llu\n", point.name.c_str(),
                static_cast<unsigned long long>(point.evaluations),
                static_cast<unsigned long long>(point.fires));
}

/// Jobs resubmitted with exponential backoff while replicas are revoked
/// mid-execution.
int run_revocation(std::uint64_t seed, int machines, int days, int jobs) {
  ScenarioSetup setup = build_fleet(seed, machines, days, false);
  SchedulerConfig config;
  config.backoff_factor = 2.0;
  config.retry_delay = 120;
  const JobScheduler scheduler(setup.registry, config);
  CheckpointConfig checkpoint;
  checkpoint.fixed_interval = 1800;
  checkpoint.cost_seconds = 30;

  int completed = 0;
  for (int j = 0; j < jobs; ++j) {
    const GuestJobSpec job{.job_id = "job" + std::to_string(j),
                           .cpu_seconds = 3600,
                           .mem_mb = 64};
    const SimTime submit =
        (days - 1) * kSecondsPerDay + (8 + j % 8) * kSecondsPerHour;
    const JobOutcome outcome =
        scheduler.run_job(job, submit, submit + 12 * kSecondsPerHour,
                          CheckpointMode::kFixed, checkpoint);
    print_outcome(j, outcome);
    completed += outcome.completed ? 1 : 0;
  }
  std::printf("completed %d/%d\n", completed, jobs);
  return completed == 0 ? 1 : 0;
}

/// Replicated placement racing the same churn a single placement faces.
int run_churn(std::uint64_t seed, int machines, int days, int jobs) {
  ScenarioSetup setup = build_fleet(seed, machines, days, false);
  const ReplicatingScheduler scheduler(setup.registry,
                                       machines < 3 ? machines : 3);
  int completed = 0;
  for (int j = 0; j < jobs; ++j) {
    const GuestJobSpec job{.job_id = "job" + std::to_string(j),
                           .cpu_seconds = 3600,
                           .mem_mb = 64};
    const SimTime submit =
        (days - 1) * kSecondsPerDay + (8 + j % 8) * kSecondsPerHour;
    const ReplicatedOutcome outcome =
        scheduler.run_job(job, submit, submit + 12 * kSecondsPerHour);
    std::printf(
        "job %02d: %s winner=%s replicas=%d lost=%d cpu=%.0f response=%llds\n",
        j, outcome.completed ? "completed" : "FAILED",
        outcome.completed ? outcome.winning_machine.c_str() : "-",
        outcome.replicas_started, outcome.replicas_failed,
        outcome.total_cpu_spent,
        static_cast<long long>(outcome.response_time()));
    completed += outcome.completed ? 1 : 0;
  }
  std::printf("completed %d/%d\n", completed, jobs);
  return completed == 0 ? 1 : 0;
}

/// Availability-target replication planning on a transient-VM fleet under a
/// replica-churn storm: replicas vanish between placement and launch, and
/// sporadic estimation outages thin the candidate pool. Every job's plan is
/// printed — the planner either meets the target from the machines it can
/// still predict, or reports an explicit fallback — and the run, including
/// the FailpointStats trailer, replays byte-identically from the same flags
/// (the service is pinned to max_threads=1 so the every-N estimate faults
/// hit the same probes regardless of FGCS_THREADS).
int run_planner(std::uint64_t seed, int machines, int days, int jobs) {
  PreemptionParams params;
  const std::vector<MachineTrace> traces =
      generate_preemption_fleet(params, seed, machines, days, "vm");
  ServiceConfig service_config;
  service_config.max_threads = 1;  // deterministic failpoint attribution
  auto service = std::make_shared<PredictionService>(service_config);
  std::vector<Gateway> gateways;
  gateways.reserve(traces.size());
  for (const MachineTrace& trace : traces)
    gateways.emplace_back(trace, Thresholds{}, EstimatorConfig{}, service);
  Registry registry;
  for (Gateway& gateway : gateways) registry.publish(gateway);

  PlannerConfig planner;
  planner.target_availability = 0.95;
  planner.max_replicas = machines < 4 ? machines : 4;
  planner.fallback_replicas = machines < 2 ? machines : 2;
  const ReplicatingScheduler scheduler(registry, planner, SchedulerConfig{},
                                       service);

  int completed = 0;
  for (int j = 0; j < jobs; ++j) {
    const GuestJobSpec job{.job_id = "job" + std::to_string(j),
                           .cpu_seconds = 3600,
                           .mem_mb = 64};
    const SimTime submit =
        (days - 1) * kSecondsPerDay + (8 + j % 8) * kSecondsPerHour;
    const ReplicatedOutcome outcome =
        scheduler.run_job(job, submit, submit + 12 * kSecondsPerHour);
    if (outcome.plan.has_value()) {
      const ReplicationPlan& plan = *outcome.plan;
      std::printf("job %02d: plan %-8s replicas=%zu achieved=%.17g "
                  "target=%.17g\n",
                  j, plan.feasible ? "feasible" : "FALLBACK",
                  plan.replicas.size(), plan.achieved_availability,
                  plan.target_availability);
    }
    std::printf(
        "job %02d: %s winner=%s replicas=%d lost=%d cpu=%.0f response=%llds\n",
        j, outcome.completed ? "completed" : "FAILED",
        outcome.completed ? outcome.winning_machine.c_str() : "-",
        outcome.replicas_started, outcome.replicas_failed,
        outcome.total_cpu_spent,
        static_cast<long long>(outcome.response_time()));
    completed += outcome.completed ? 1 : 0;
  }
  const ServiceStats service_stats = service->stats();
  std::printf("service: lookups=%llu batches=%llu invalidations=%llu\n",
              static_cast<unsigned long long>(service_stats.lookups),
              static_cast<unsigned long long>(service_stats.batches),
              static_cast<unsigned long long>(service_stats.invalidations));
  std::printf("completed %d/%d\n", completed, jobs);
  return completed == 0 ? 1 : 0;
}

/// Loopback prediction serving under a failpoint storm: dropped accepts,
/// 3-byte reads, 16-byte writes, and corrupt-flagged frames. The client's
/// whole-batch retry must drive every job to completion with Predictions
/// bit-identical to an in-process service, and — because every net failpoint
/// is evaluated per connection or per frame, never per read()/write() — the
/// printed counters and FailpointStats replay byte-identically.
int run_net(std::uint64_t seed, int machines, int days, int jobs,
            unsigned reactors) {
  WorkloadParams params;
  const std::vector<MachineTrace> traces =
      generate_fleet(params, seed, machines, days, "chaos");

  net::ServerConfig server_config;
  server_config.reactors = reactors;
  // Hand-off placement is deterministic round-robin; with a sequential
  // client that keeps the whole report — including the per-reactor counter
  // split printed below — byte-identical run to run.
  server_config.force_accept_handoff = reactors > 1;
  net::PredictionServer server(server_config,
                               std::make_shared<PredictionService>());
  for (const MachineTrace& trace : traces) server.add_trace(trace);
  server.start();
  if (reactors > 1)
    std::printf("reactors=%u mode=%s\n", server.reactor_count(),
                server.accept_handoff() ? "accept-handoff" : "reuseport");

  net::ClientConfig client_config;
  client_config.port = server.port();
  client_config.max_attempts = 10;
  client_config.backoff.retry_delay = 2;      // ms: keep the replay quick
  client_config.backoff.max_retry_delay = 50; // ms
  net::PredictionClient client(client_config);

  // Independent in-process reference for the bit-identity verdicts.
  PredictionService reference;

  int completed = 0;
  for (int j = 0; j < jobs; ++j) {
    std::vector<net::WireRequestItem> items;
    std::vector<const MachineTrace*> item_traces;
    for (int k = 0; k < 2; ++k) {
      const MachineTrace& trace =
          traces[static_cast<std::size_t>(j + k) % traces.size()];
      net::WireRequestItem item;
      item.machine_key = trace.machine_id();
      item.request.target_day = trace.day_count();
      item.request.window.start_of_day =
          (8 + (j + 5 * k) % 10) * kSecondsPerHour;
      item.request.window.length = (1 + j % 4) * kSecondsPerHour;
      items.push_back(std::move(item));
      item_traces.push_back(&trace);
    }
    const std::vector<Prediction> served = client.predict_batch(items);
    bool identical = true;
    for (std::size_t i = 0; i < served.size(); ++i) {
      const Prediction expected =
          reference.predict(*item_traces[i], items[i].request);
      identical = identical &&
                  served[i].temporal_reliability ==
                      expected.temporal_reliability &&
                  served[i].p_absorb == expected.p_absorb;
      std::printf("job %02d.%zu: %-12s TR %.17g %s\n", j, i,
                  items[i].machine_key.c_str(),
                  served[i].temporal_reliability,
                  identical ? "bit-identical" : "MISMATCH");
    }
    completed += identical ? 1 : 0;
  }

  // stop() joins the serving thread, so the snapshot below can't race the
  // loop's final counter increments (the last write lands before the join).
  server.stop();
  const net::ServerStats stats = server.stats();
  // `active` and timing-derived values stay out of this line; everything
  // printed is pinned by the failpoint spec + seed alone.
  std::printf("server: accepted=%llu dropped=%llu frames=%llu requests=%llu "
              "predictions=%llu responses=%llu errors=%llu rx=%llu tx=%llu\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.dropped),
              static_cast<unsigned long long>(stats.frames),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.predictions),
              static_cast<unsigned long long>(stats.responses),
              static_cast<unsigned long long>(stats.errors),
              static_cast<unsigned long long>(stats.rx_bytes),
              static_cast<unsigned long long>(stats.tx_bytes));
  if (reactors > 1) {
    // The per-reactor split is part of the replay contract: round-robin
    // hand-off + sequential driving pin which reactor serviced what.
    const std::vector<net::ServerStats> shards = server.reactor_stats();
    for (std::size_t i = 0; i < shards.size(); ++i)
      std::printf("reactor %zu: frames=%llu requests=%llu responses=%llu "
                  "errors=%llu\n",
                  i, static_cast<unsigned long long>(shards[i].frames),
                  static_cast<unsigned long long>(shards[i].requests),
                  static_cast<unsigned long long>(shards[i].responses),
                  static_cast<unsigned long long>(shards[i].errors));
  }
  const net::ClientStats& client_stats = client.stats();
  std::printf("client: batches=%llu attempts=%llu retries=%llu "
              "reconnects=%llu server_errors=%llu\n",
              static_cast<unsigned long long>(client_stats.batches),
              static_cast<unsigned long long>(client_stats.attempts),
              static_cast<unsigned long long>(client_stats.retries),
              static_cast<unsigned long long>(client_stats.reconnects),
              static_cast<unsigned long long>(client_stats.server_errors));
  std::printf("completed %d/%d\n", completed, jobs);
  return completed == jobs ? 0 : 1;
}

/// Mid-stream ingestion under a failpoint storm: append frames dropped
/// before decoding, day rollups injected to fail, plus the net scenario's
/// transport faults. The client's idempotent whole-batch retries (duplicate
/// samples skipped by the store) must still land every machine's history
/// byte-identical to its source trace, and predictions served over the
/// streamed history must match an in-process service on the originals bit
/// for bit. Every counter printed is pinned by the spec + seed, so the run
/// replays byte-identically (tests/chaos_replay.cmake, ingest legs).
int run_ingest(std::uint64_t seed, int machines, int days, int jobs,
               unsigned reactors) {
  WorkloadParams params;
  params.sampling_period = 60;  // coarse period keeps the replay quick
  const std::vector<MachineTrace> traces =
      generate_fleet(params, seed, machines, days, "chaos");

  net::ServerConfig server_config;
  server_config.reactors = reactors;
  server_config.force_accept_handoff = reactors > 1;
  server_config.ingest = true;
  net::PredictionServer server(server_config,
                               std::make_shared<PredictionService>());
  server.start();
  if (reactors > 1)
    std::printf("reactors=%u mode=%s\n", server.reactor_count(),
                server.accept_handoff() ? "accept-handoff" : "reuseport");

  net::ClientConfig client_config;
  client_config.port = server.port();
  client_config.max_attempts = 12;
  client_config.backoff.retry_delay = 2;      // ms: keep the replay quick
  client_config.backoff.max_retry_delay = 50; // ms
  net::PredictionClient client(client_config);

  bool all_ok = true;
  for (std::size_t m = 0; m < traces.size(); ++m) {
    const MachineTrace& trace = traces[m];
    const std::size_t per_day = trace.samples_per_day();
    const std::uint64_t total =
        static_cast<std::uint64_t>(trace.day_count()) * per_day;
    // Deterministic per-machine batch sizing that straddles day boundaries.
    const std::size_t batch = per_day / 3 + 211 * m;

    net::WireAppendRequest request;
    request.machine_id = trace.machine_id();
    request.epoch_day_of_week =
        static_cast<std::uint8_t>(trace.calendar().epoch_day_of_week());
    request.sampling_period = trace.sampling_period();
    request.total_mem_mb = static_cast<std::uint32_t>(trace.total_mem_mb());

    std::uint64_t accepted = 0, duplicates = 0, index = 0, generation = 0;
    while (index < total) {
      const std::uint64_t count = std::min<std::uint64_t>(batch, total - index);
      request.first_sample_index = index;
      request.samples.clear();
      for (std::uint64_t i = index; i < index + count; ++i)
        request.samples.push_back(
            trace.at(static_cast<std::int64_t>(i / per_day), i % per_day));
      const net::WireAppendAck ack = client.append_samples(request);
      accepted += ack.accepted;
      duplicates += ack.duplicates;
      generation = ack.generation;
      index = ack.next_index;
    }

    // The survived storm must leave the server's history byte-identical.
    const std::shared_ptr<const MachineTrace> snap =
        server.store()->snapshot(trace.machine_id());
    bool identical = snap != nullptr && snap->day_count() == trace.day_count();
    for (std::int64_t d = 0; identical && d < trace.day_count(); ++d)
      for (std::size_t i = 0; identical && i < per_day; ++i)
        identical = snap->at(d, i) == trace.at(d, i);
    all_ok = all_ok && identical &&
             generation == static_cast<std::uint64_t>(trace.day_count());
    std::printf("stream %-8s accepted=%llu duplicates=%llu gen=%llu %s\n",
                trace.machine_id().c_str(),
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(duplicates),
                static_cast<unsigned long long>(generation),
                identical ? "history-identical" : "HISTORY MISMATCH");
  }

  // Predictions served over the streamed history, verified bit for bit
  // against an in-process reference on the source traces.
  PredictionService reference;
  int completed = 0;
  for (int j = 0; j < jobs; ++j) {
    const MachineTrace& trace = traces[static_cast<std::size_t>(j) %
                                       traces.size()];
    net::WireRequestItem item;
    item.machine_key = trace.machine_id();
    item.request.target_day = trace.day_count();
    item.request.window.start_of_day = (7 + j % 12) * kSecondsPerHour;
    item.request.window.length = (1 + j % 3) * kSecondsPerHour;
    const Prediction served = client.predict(item);
    const Prediction expected = reference.predict(trace, item.request);
    const bool identical =
        served.temporal_reliability == expected.temporal_reliability &&
        served.p_absorb == expected.p_absorb;
    std::printf("job %02d: %-8s TR %.17g %s\n", j, item.machine_key.c_str(),
                served.temporal_reliability,
                identical ? "bit-identical" : "MISMATCH");
    completed += identical ? 1 : 0;
  }

  server.stop();
  const net::ServerStats stats = server.stats();
  std::printf("server: accepted=%llu frames=%llu requests=%llu appends=%llu "
              "samples=%llu duplicates=%llu closed=%llu retired=%llu "
              "errors=%llu\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.frames),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.appends),
              static_cast<unsigned long long>(stats.append_samples),
              static_cast<unsigned long long>(stats.append_duplicates),
              static_cast<unsigned long long>(stats.days_closed),
              static_cast<unsigned long long>(stats.days_retired),
              static_cast<unsigned long long>(stats.errors));
  if (reactors > 1) {
    const std::vector<net::ServerStats> shards = server.reactor_stats();
    for (std::size_t i = 0; i < shards.size(); ++i)
      std::printf("reactor %zu: frames=%llu appends=%llu samples=%llu "
                  "closed=%llu errors=%llu\n",
                  i, static_cast<unsigned long long>(shards[i].frames),
                  static_cast<unsigned long long>(shards[i].appends),
                  static_cast<unsigned long long>(shards[i].append_samples),
                  static_cast<unsigned long long>(shards[i].days_closed),
                  static_cast<unsigned long long>(shards[i].errors));
  }
  const net::ClientStats& client_stats = client.stats();
  std::printf("client: appends=%llu batches=%llu attempts=%llu retries=%llu "
              "reconnects=%llu server_errors=%llu\n",
              static_cast<unsigned long long>(client_stats.appends),
              static_cast<unsigned long long>(client_stats.batches),
              static_cast<unsigned long long>(client_stats.attempts),
              static_cast<unsigned long long>(client_stats.retries),
              static_cast<unsigned long long>(client_stats.reconnects),
              static_cast<unsigned long long>(client_stats.server_errors));
  std::printf("completed %d/%d\n", completed, jobs);
  return all_ok && completed == jobs ? 0 : 1;
}

/// Decentralized-registry storm, two phases (DESIGN.md §11).
///
/// Phase 1 drives a 3-node GossipMesh through a seed-pinned churn script —
/// bootstrap, partition + heal, crash + restart — with the gossip.drop /
/// gossip.delay failpoints mangling the anti-entropy traffic. Every phase
/// must re-converge all nodes to one membership + ring digest within a
/// bounded round count, and the printed digests, convergence rounds, agent
/// counters, and FailpointStats replay byte-identically from the same flags
/// (tests/chaos_replay.cmake, gossip legs).
///
/// Phase 2 proves the sharded serving path: three PredictionServers take
/// the converged ring (their identities and real bound ports), a
/// ShardedPredictionClient routes --jobs batches across them — through a
/// deliberately staled ring every third job, healing via kWrongShard — and
/// every served TR must be bit-identical to an in-process single-registry
/// reference.
int run_gossip(std::uint64_t seed, int machines, int days, int jobs,
               unsigned reactors) {
  constexpr int kNodes = 3;
  const auto node_id = [](int i) { return "reg" + std::to_string(i); };

  GossipConfig gossip_config;
  gossip_config.seed = seed;
  GossipMesh mesh(gossip_config);
  for (int i = 0; i < kNodes; ++i) mesh.add_node(node_id(i));
  mesh.connect_all();

  const auto print_phase = [&mesh](const char* phase, int rounds) {
    if (rounds < 0) {
      std::printf("phase %-10s DID NOT CONVERGE (rounds=%llu)\n", phase,
                  static_cast<unsigned long long>(mesh.rounds()));
      return false;
    }
    std::printf("phase %-10s converged rounds=%llu digest=%016llx ring=%zu\n",
                phase, static_cast<unsigned long long>(mesh.rounds()),
                static_cast<unsigned long long>(mesh.digest()),
                mesh.agent("reg0").ring().size());
    return true;
  };

  bool converged = print_phase("bootstrap", mesh.run_until_converged(64));

  // Partition reg0 away from {reg1, reg2}, churn inside the split, heal.
  mesh.partition({{"reg0"}, {"reg1", "reg2"}});
  for (int r = 0; r < 8; ++r) mesh.run_round();
  mesh.heal();
  converged = print_phase("heal", mesh.run_until_converged(128)) && converged;

  // Crash reg1 until phi declares it dead, then bring it back: the fresh
  // incarnation must beat the tombstone everywhere.
  mesh.stop("reg1");
  for (int r = 0; r < 24; ++r) mesh.run_round();
  std::printf("phase %-10s reg1 seen as %s by reg0\n", "crash",
              [&mesh] {
                for (const MemberState& m : mesh.agent("reg0").members())
                  if (m.node_id == "reg1") return to_string(m.health);
                return "unknown";
              }());
  mesh.restart("reg1");
  converged =
      print_phase("restart", mesh.run_until_converged(128)) && converged;

  for (int i = 0; i < kNodes; ++i) {
    const GossipAgentStats& stats = mesh.agent(node_id(i)).stats();
    std::printf("agent %s: rounds=%llu syncs_sent=%llu syncs_recv=%llu "
                "acks=%llu updates=%llu refutations=%llu suspicions=%llu "
                "deaths=%llu\n",
                node_id(i).c_str(),
                static_cast<unsigned long long>(stats.rounds),
                static_cast<unsigned long long>(stats.syncs_sent),
                static_cast<unsigned long long>(stats.syncs_received),
                static_cast<unsigned long long>(stats.acks_received),
                static_cast<unsigned long long>(stats.records_updated),
                static_cast<unsigned long long>(stats.refutations),
                static_cast<unsigned long long>(stats.suspicions),
                static_cast<unsigned long long>(stats.deaths));
  }
  if (!converged) return 1;

  // -------------------------------------------------------------------------
  // Phase 2: serve through the converged ring over the real wire.
  WorkloadParams params;
  const std::vector<MachineTrace> traces =
      generate_fleet(params, seed, machines, days, "chaos");

  std::vector<std::unique_ptr<net::PredictionServer>> servers;
  for (int i = 0; i < kNodes; ++i) {
    net::ServerConfig server_config;
    server_config.reactors = reactors;
    server_config.force_accept_handoff = reactors > 1;
    server_config.node_id = node_id(i);
    servers.push_back(std::make_unique<net::PredictionServer>(
        server_config, std::make_shared<PredictionService>()));
    // Every node holds every trace: the ring decides who *answers*, which
    // is exactly what makes a wrong ring observable as kWrongShard rather
    // than as a missing machine.
    for (const MachineTrace& trace : traces) servers.back()->add_trace(trace);
    servers.back()->start();
  }
  if (reactors > 1)
    std::printf("reactors=%u mode=%s\n", servers[0]->reactor_count(),
                servers[0]->accept_handoff() ? "accept-handoff" : "reuseport");

  std::vector<RingMember> members;
  for (int i = 0; i < kNodes; ++i)
    members.push_back(RingMember{node_id(i), "127.0.0.1",
                                 servers[static_cast<std::size_t>(i)]->port()});
  const HashRing ring(members, /*vnodes=*/64, /*version=*/1);
  for (const auto& server : servers) server->set_ring(ring);

  net::ShardedClientConfig client_config;
  client_config.base.port = 1;  // per-shard endpoints come from the ring
  net::ShardedPredictionClient client(ring, client_config);

  PredictionService reference;
  int completed = 0;
  for (int j = 0; j < jobs; ++j) {
    if (j % 3 == 0 && ring.size() > 1) {
      // Stale the client's view: a two-member ring misroutes every key the
      // dropped member owns, and the wrong owner's kWrongShard answer must
      // heal the view mid-batch.
      std::vector<RingMember> stale(members.begin(), members.end());
      stale.erase(stale.begin() + j / 3 % kNodes);
      client.adopt_ring(HashRing(stale, /*vnodes=*/64, /*version=*/0));
    }
    std::vector<net::WireRequestItem> items;
    std::vector<const MachineTrace*> item_traces;
    for (int k = 0; k < 2; ++k) {
      const MachineTrace& trace =
          traces[static_cast<std::size_t>(j + k) % traces.size()];
      net::WireRequestItem item;
      item.machine_key = trace.machine_id();
      item.request.target_day = trace.day_count();
      item.request.window.start_of_day =
          (8 + (j + 5 * k) % 10) * kSecondsPerHour;
      item.request.window.length = (1 + j % 4) * kSecondsPerHour;
      items.push_back(std::move(item));
      item_traces.push_back(&trace);
    }
    const std::vector<Prediction> served = client.predict_batch(items);
    bool identical = true;
    for (std::size_t i = 0; i < served.size(); ++i) {
      const Prediction expected =
          reference.predict(*item_traces[i], items[i].request);
      identical = identical &&
                  served[i].temporal_reliability ==
                      expected.temporal_reliability &&
                  served[i].p_absorb == expected.p_absorb;
      std::printf("job %02d.%zu: %-12s TR %.17g %s\n", j, i,
                  items[i].machine_key.c_str(),
                  served[i].temporal_reliability,
                  identical ? "bit-identical" : "MISMATCH");
    }
    completed += identical ? 1 : 0;
  }

  for (const auto& server : servers) server->stop();
  for (int i = 0; i < kNodes; ++i) {
    const net::ServerStats stats = servers[static_cast<std::size_t>(i)]->stats();
    std::printf("server %s: requests=%llu responses=%llu wrong_shard=%llu "
                "errors=%llu\n",
                node_id(i).c_str(),
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.responses),
                static_cast<unsigned long long>(stats.wrong_shard),
                static_cast<unsigned long long>(stats.errors));
  }
  const net::ShardedClientStats& client_stats = client.stats();
  std::printf("client: batches=%llu sub_batches=%llu hops=%llu "
              "refreshes=%llu\n",
              static_cast<unsigned long long>(client_stats.batches),
              static_cast<unsigned long long>(client_stats.sub_batches),
              static_cast<unsigned long long>(client_stats.wrong_shard_hops),
              static_cast<unsigned long long>(client_stats.ring_refreshes));
  std::printf("completed %d/%d\n", completed, jobs);
  return completed == jobs ? 0 : 1;
}

int main_checked(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const std::string scenario = args.get("scenario");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const int machines = static_cast<int>(args.get_int_or("machines", 4));
  const int days = static_cast<int>(args.get_int_or("days", 10));
  const int jobs = static_cast<int>(args.get_int_or("jobs", 8));
  const auto reactors =
      static_cast<unsigned>(args.get_int_or("reactors", 1));
  std::string spec = args.get_or("failpoints", "");
  args.check_all_consumed();
  if (machines < 1 || days < 2 || jobs < 1) {
    std::fprintf(stderr, "need --machines >= 1, --days >= 2, --jobs >= 1\n");
    return 1;
  }

  // Scenario defaults; fold the run seed into the probability streams so
  // --seed changes the injected fault pattern too.
  const std::string s = std::to_string(seed);
  if (spec.empty()) {
    if (scenario == "revocation")
      spec = "gateway.execute.revoke=prob:0.003:" + s;
    else if (scenario == "churn")
      spec = "gateway.execute.revoke=prob:0.002:" + s;
    else if (scenario == "planner")
      // Replica-churn storm on the transient-VM fleet: ~30% of planned
      // replicas lost at launch, every 7th fleet probe failing to estimate.
      spec = "replication.replica.lost=prob:0.3:" + s +
             ";service.estimate.fail=every:7";
    else if (scenario == "registry")
      spec = "registry.enumerate.drop=prob:0.4:" + s +
             ";registry.lookup.stale=every:7";
    else if (scenario == "service")
      spec = "service.cache.invalidate=every:5;service.estimate.slow=every:9," +
             std::string("latency=0.0005");
    else if (scenario == "net")
      // frame.corrupt is the storm's driver (it forces reconnects, which
      // feed the per-accept points); the reconnect stream then hits capped
      // reads/writes every other connection and a dropped accept every 3rd.
      spec = "net.frame.corrupt=prob:0.4:" + s +
             ";net.read.short=every:2;net.write.stall=every:2;"
             "net.accept.drop=every:3";
    else if (scenario == "ingest")
      // Mid-stream storm: append frames rejected before decoding, every 9th
      // day rollup injected to fail, and a thinner transport storm on top —
      // all absorbed by idempotent client retries.
      spec = "ingest.append.drop=prob:0.25:" + s +
             ";ingest.rollup.fail=every:9"
             ";net.frame.corrupt=prob:0.1:" + s +
             ";net.read.short=every:3;net.write.stall=every:4;"
             "net.accept.drop=every:5";
    else if (scenario == "gossip")
      // Anti-entropy storm: a quarter of all syncs/acks lost outright and
      // every 5th delivered a round late. No net.* points — the phase-2
      // serving pass must stay transport-clean so the only wrong answers a
      // shard can give are kWrongShard refusals.
      spec = "gossip.drop=prob:0.25:" + s + ";gossip.delay=every:5";
  }

  Failpoints::instance().reset();
  Failpoints::instance().arm_from_spec(spec);
  std::printf("scenario=%s seed=%llu machines=%d days=%d jobs=%d\n",
              scenario.c_str(), static_cast<unsigned long long>(seed),
              machines, days, jobs);
  std::printf("failpoints=%s\n", spec.c_str());

  int status = 1;
  if (scenario == "revocation") {
    status = run_revocation(seed, machines, days, jobs);
  } else if (scenario == "churn") {
    status = run_churn(seed, machines, days, jobs);
  } else if (scenario == "planner") {
    status = run_planner(seed, machines, days, jobs);
  } else if (scenario == "registry") {
    // Same scheduling loop as revocation; the injected faults hit the
    // registry enumeration/lookup path instead of running guests.
    status = run_revocation(seed, machines, days, jobs);
  } else if (scenario == "service") {
    // Batched placement through a shared PredictionService under forced
    // invalidation churn and latency injection.
    ScenarioSetup setup = build_fleet(seed, machines, days, true);
    const JobScheduler scheduler(setup.registry, SchedulerConfig{},
                                 setup.service);
    int completed = 0;
    for (int j = 0; j < jobs; ++j) {
      const GuestJobSpec job{.job_id = "job" + std::to_string(j),
                             .cpu_seconds = 1800,
                             .mem_mb = 64};
      const SimTime submit =
          (days - 1) * kSecondsPerDay + (8 + j % 8) * kSecondsPerHour;
      const JobOutcome outcome =
          scheduler.run_job(job, submit, submit + 12 * kSecondsPerHour);
      print_outcome(j, outcome);
      completed += outcome.completed ? 1 : 0;
    }
    // Only order-invariant counters belong in this line: with the batch
    // fanned out over the thread pool, *which* request warms the cache (and
    // so the hit/miss/partial split) depends on worker interleaving, while
    // lookups, batches and invalidations are fixed by the scenario alone.
    // Byte-identical replay from the same flags is this tool's contract.
    const ServiceStats service_stats = setup.service->stats();
    std::printf("service: lookups=%llu batches=%llu invalidations=%llu\n",
                static_cast<unsigned long long>(service_stats.lookups),
                static_cast<unsigned long long>(service_stats.batches),
                static_cast<unsigned long long>(service_stats.invalidations));
    std::printf("completed %d/%d\n", completed, jobs);
    status = completed == 0 ? 1 : 0;
  } else if (scenario == "net") {
    status = run_net(seed, machines, days, jobs, reactors);
  } else if (scenario == "ingest") {
    status = run_ingest(seed, machines, days, jobs, reactors);
  } else if (scenario == "gossip") {
    status = run_gossip(seed, machines, days, jobs, reactors);
  } else {
    std::fprintf(stderr,
                 "unknown scenario '%s' "
                 "(use revocation|churn|planner|registry|service|net|ingest"
                 "|gossip)\n",
                 scenario.c_str());
    return 1;
  }
  print_stats();
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return main_checked(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fgcs_chaos: %s\n", error.what());
    return 1;
  }
}
