#!/usr/bin/env bash
# Dead-link gate for the repo's markdown: every *relative* link target in
# every committed *.md must exist on disk (anchors and absolute URLs are out
# of scope — this catches renamed/deleted files, not moved headings).
#
#   tools/check_doc_links.sh [repo-root]
#
# Exits 1 listing every dead link; 0 (silently, plus a summary) when clean.
# CI runs this in the docs job; it needs nothing but bash + grep.
set -u

root="${1:-.}"
cd "$root" || exit 1

fail=0
checked=0

# Committed markdown only, so stray build artifacts can't fail the gate.
files="$(git ls-files '*.md' 2>/dev/null)"
if [ -z "$files" ]; then
  files="$(find . -name '*.md' -not -path './build/*' -not -path './.git/*')"
fi

for file in $files; do
  case "$file" in
    # Vendored literature extracts (PDF-to-markdown artifacts with image
    # stubs that were never part of the repo); not maintained docs.
    PAPERS.md|SNIPPETS.md|./PAPERS.md|./SNIPPETS.md) continue ;;
  esac
  dir="$(dirname "$file")"
  # Inline markdown links: [text](target). Tolerates several per line;
  # skips images' leading '!' implicitly (the capture starts at '(').
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;  # external or in-page
    esac
    path="${target%%#*}"       # strip an anchor suffix
    path="${path%% *}"         # and any '(path "title")' title
    [ -z "$path" ] && continue
    case "$path" in
      /*) resolved="$path" ;;  # absolute: rare, check as-is
      *) resolved="$dir/$path" ;;
    esac
    checked=$((checked + 1))
    if [ ! -e "$resolved" ]; then
      echo "DEAD LINK: $file -> $target (no file at $resolved)" >&2
      fail=1
    fi
  done < <(grep -o '\](\([^)]*\))' "$file" 2>/dev/null \
             | sed 's/^](//; s/)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "check_doc_links: dead relative links found" >&2
  exit 1
fi
echo "check_doc_links: $checked relative links OK"
